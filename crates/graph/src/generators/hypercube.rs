//! The boolean hypercube `Q_dim`.
//!
//! A classic regular graph with logarithmic degree — *below* the paper's
//! density threshold — used by the COBRA-walk experiment (E8) and as a
//! stress case for the degree sweep.

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// Hypercube of dimension `dim`: vertices are the `2^dim` bit strings, with
/// an edge between strings at Hamming distance 1.
pub fn hypercube(dim: usize) -> Result<CsrGraph> {
    if dim == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "hypercube dimension must be at least 1".into(),
        });
    }
    if dim > 28 {
        return Err(GraphError::InvalidParameter {
            reason: format!("hypercube dimension {dim} too large (limit 28)"),
        });
    }
    let n = 1usize << dim;
    let mut offsets = Vec::with_capacity(n + 1);
    let mut neighbours = Vec::with_capacity(n * dim);
    offsets.push(0);
    for v in 0..n {
        // Flipping bit b gives the neighbours; collect then sort.
        let mut row: Vec<usize> = (0..dim).map(|b| v ^ (1 << b)).collect();
        row.sort_unstable();
        neighbours.extend_from_slice(&row);
        offsets.push(neighbours.len());
    }
    Ok(CsrGraph::from_csr_unchecked(n, offsets, neighbours))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter_exact, is_bipartite, is_connected};

    #[test]
    fn rejects_degenerate_dimensions() {
        assert!(hypercube(0).is_err());
        assert!(hypercube(40).is_err());
    }

    #[test]
    fn dimension_one_is_an_edge() {
        let g = hypercube(1).unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn counts_and_regularity() {
        for dim in 1..=6 {
            let g = hypercube(dim).unwrap();
            let n = 1 << dim;
            assert_eq!(g.num_vertices(), n);
            assert_eq!(g.num_edges(), n * dim / 2);
            for v in g.vertices() {
                assert_eq!(g.degree(v), dim);
            }
        }
    }

    #[test]
    fn adjacency_is_hamming_distance_one() {
        let g = hypercube(4).unwrap();
        for u in g.vertices() {
            for v in g.vertices() {
                let adjacent = (u ^ v).count_ones() == 1;
                assert_eq!(g.has_edge(u, v), adjacent, "u={u}, v={v}");
            }
        }
    }

    #[test]
    fn structural_properties() {
        let g = hypercube(5).unwrap();
        assert!(is_connected(&g));
        assert!(is_bipartite(&g));
        assert_eq!(diameter_exact(&g).unwrap(), 5);
    }
}
