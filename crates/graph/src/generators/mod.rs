//! Graph generators.
//!
//! Theorem 1 quantifies over *all* graphs with minimum degree `n^α`; these
//! generators produce representative members of that family (complete,
//! dense Erdős–Rényi, random regular, dense SBM, core–periphery, …) as well
//! as deliberately out-of-scope graphs (cycles, paths, sparse ER, barbells
//! with a thin bridge) used by the degree-sweep and robustness experiments.

mod barbell;
mod chung_lu;
mod classic;
mod complete;
mod core_periphery;
mod erdos_renyi;
mod grid;
mod hypercube;
mod regular;
mod sbm;

pub use barbell::barbell;
pub use chung_lu::{chung_lu, power_law_weights};
pub use classic::{complete_bipartite, cycle, path, star, wheel};
pub use complete::complete;
pub use core_periphery::core_periphery;
pub use erdos_renyi::{dense_gnp_for_alpha, erdos_renyi_gnm, erdos_renyi_gnp};
pub use grid::{grid_2d, torus_2d};
pub use hypercube::hypercube;
pub use regular::random_regular;
pub use sbm::{planted_block_of, planted_partition, stochastic_block_model};

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::csr::CsrGraph;
use crate::error::Result;

/// A serialisable description of a graph family instance, so experiment
/// configurations can name the graph they ran on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields are documented on the variants themselves
pub enum GraphSpec {
    /// Complete graph `K_n`.
    Complete { n: usize },
    /// Cycle `C_n`.
    Cycle { n: usize },
    /// Path `P_n`.
    Path { n: usize },
    /// Star `K_{1,n-1}`.
    Star { n: usize },
    /// Wheel on `n` vertices.
    Wheel { n: usize },
    /// Complete bipartite `K_{a,b}`.
    CompleteBipartite { a: usize, b: usize },
    /// Erdős–Rényi `G(n, p)`.
    ErdosRenyiGnp { n: usize, p: f64 },
    /// Erdős–Rényi `G(n, m)`.
    ErdosRenyiGnm { n: usize, m: usize },
    /// Dense `G(n, p)` with `p` chosen so the expected degree is `n^alpha`.
    DenseForAlpha { n: usize, alpha: f64 },
    /// Random `d`-regular graph.
    RandomRegular { n: usize, d: usize },
    /// Chung–Lu graph with power-law expected degrees.
    ChungLuPowerLaw {
        n: usize,
        exponent: f64,
        min_weight: f64,
        max_weight: f64,
    },
    /// Hypercube of the given dimension (`n = 2^dim`).
    Hypercube { dim: usize },
    /// 2-dimensional torus (`rows x cols`).
    Torus2d { rows: usize, cols: usize },
    /// 2-dimensional grid (`rows x cols`), no wrap-around.
    Grid2d { rows: usize, cols: usize },
    /// Planted partition model with `blocks` equal blocks.
    PlantedPartition {
        n: usize,
        blocks: usize,
        p_in: f64,
        p_out: f64,
    },
    /// Barbell: two cliques of size `clique` joined by a path of `bridge` vertices.
    Barbell { clique: usize, bridge: usize },
    /// Core–periphery: dense core of `core` vertices, `periphery` satellite vertices.
    CorePeriphery {
        core: usize,
        periphery: usize,
        attach: usize,
    },
}

impl GraphSpec {
    /// Instantiates the described graph, drawing randomness from `rng` for
    /// the random families (deterministic families ignore `rng`).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<CsrGraph> {
        match *self {
            GraphSpec::Complete { n } => Ok(complete(n)),
            GraphSpec::Cycle { n } => cycle(n),
            GraphSpec::Path { n } => path(n),
            GraphSpec::Star { n } => star(n),
            GraphSpec::Wheel { n } => wheel(n),
            GraphSpec::CompleteBipartite { a, b } => complete_bipartite(a, b),
            GraphSpec::ErdosRenyiGnp { n, p } => erdos_renyi_gnp(n, p, rng),
            GraphSpec::ErdosRenyiGnm { n, m } => erdos_renyi_gnm(n, m, rng),
            GraphSpec::DenseForAlpha { n, alpha } => dense_gnp_for_alpha(n, alpha, rng),
            GraphSpec::RandomRegular { n, d } => random_regular(n, d, rng),
            GraphSpec::ChungLuPowerLaw {
                n,
                exponent,
                min_weight,
                max_weight,
            } => {
                let weights = power_law_weights(n, exponent, min_weight, max_weight)?;
                chung_lu(&weights, rng)
            }
            GraphSpec::Hypercube { dim } => hypercube(dim),
            GraphSpec::Torus2d { rows, cols } => torus_2d(rows, cols),
            GraphSpec::Grid2d { rows, cols } => grid_2d(rows, cols),
            GraphSpec::PlantedPartition {
                n,
                blocks,
                p_in,
                p_out,
            } => planted_partition(n, blocks, p_in, p_out, rng),
            GraphSpec::Barbell { clique, bridge } => barbell(clique, bridge),
            GraphSpec::CorePeriphery {
                core,
                periphery,
                attach,
            } => core_periphery(core, periphery, attach, rng),
        }
    }

    /// Number of vertices the generated graph will have, without generating
    /// it (every family's vertex count is a closed form of its parameters).
    pub fn num_vertices(&self) -> usize {
        match *self {
            GraphSpec::Complete { n }
            | GraphSpec::Cycle { n }
            | GraphSpec::Path { n }
            | GraphSpec::Star { n }
            | GraphSpec::Wheel { n }
            | GraphSpec::ErdosRenyiGnp { n, .. }
            | GraphSpec::ErdosRenyiGnm { n, .. }
            | GraphSpec::DenseForAlpha { n, .. }
            | GraphSpec::RandomRegular { n, .. }
            | GraphSpec::ChungLuPowerLaw { n, .. }
            | GraphSpec::PlantedPartition { n, .. } => n,
            GraphSpec::CompleteBipartite { a, b } => a + b,
            GraphSpec::Hypercube { dim } => 1usize << dim,
            GraphSpec::Torus2d { rows, cols } | GraphSpec::Grid2d { rows, cols } => rows * cols,
            GraphSpec::Barbell { clique, bridge } => 2 * clique + bridge,
            GraphSpec::CorePeriphery {
                core, periphery, ..
            } => core + periphery,
        }
    }

    /// A short human-readable label for reports and bench names.
    pub fn label(&self) -> String {
        match *self {
            GraphSpec::Complete { n } => format!("complete(n={n})"),
            GraphSpec::Cycle { n } => format!("cycle(n={n})"),
            GraphSpec::Path { n } => format!("path(n={n})"),
            GraphSpec::Star { n } => format!("star(n={n})"),
            GraphSpec::Wheel { n } => format!("wheel(n={n})"),
            GraphSpec::CompleteBipartite { a, b } => format!("complete_bipartite({a},{b})"),
            GraphSpec::ErdosRenyiGnp { n, p } => format!("gnp(n={n},p={p})"),
            GraphSpec::ErdosRenyiGnm { n, m } => format!("gnm(n={n},m={m})"),
            GraphSpec::DenseForAlpha { n, alpha } => format!("dense_gnp(n={n},alpha={alpha})"),
            GraphSpec::RandomRegular { n, d } => format!("random_regular(n={n},d={d})"),
            GraphSpec::ChungLuPowerLaw { n, exponent, .. } => {
                format!("chung_lu(n={n},gamma={exponent})")
            }
            GraphSpec::Hypercube { dim } => format!("hypercube(dim={dim})"),
            GraphSpec::Torus2d { rows, cols } => format!("torus({rows}x{cols})"),
            GraphSpec::Grid2d { rows, cols } => format!("grid({rows}x{cols})"),
            GraphSpec::PlantedPartition {
                n,
                blocks,
                p_in,
                p_out,
            } => {
                format!("planted_partition(n={n},k={blocks},p_in={p_in},p_out={p_out})")
            }
            GraphSpec::Barbell { clique, bridge } => {
                format!("barbell(clique={clique},bridge={bridge})")
            }
            GraphSpec::CorePeriphery {
                core,
                periphery,
                attach,
            } => {
                format!("core_periphery(core={core},periphery={periphery},attach={attach})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spec_generates_every_family() {
        let mut rng = StdRng::seed_from_u64(77);
        let specs = vec![
            GraphSpec::Complete { n: 10 },
            GraphSpec::Cycle { n: 10 },
            GraphSpec::Path { n: 10 },
            GraphSpec::Star { n: 10 },
            GraphSpec::Wheel { n: 10 },
            GraphSpec::CompleteBipartite { a: 4, b: 6 },
            GraphSpec::ErdosRenyiGnp { n: 40, p: 0.3 },
            GraphSpec::ErdosRenyiGnm { n: 40, m: 100 },
            GraphSpec::DenseForAlpha { n: 100, alpha: 0.7 },
            GraphSpec::RandomRegular { n: 30, d: 4 },
            GraphSpec::ChungLuPowerLaw {
                n: 50,
                exponent: 2.5,
                min_weight: 3.0,
                max_weight: 20.0,
            },
            GraphSpec::Hypercube { dim: 4 },
            GraphSpec::Torus2d { rows: 5, cols: 6 },
            GraphSpec::Grid2d { rows: 5, cols: 6 },
            GraphSpec::PlantedPartition {
                n: 40,
                blocks: 4,
                p_in: 0.6,
                p_out: 0.1,
            },
            GraphSpec::Barbell {
                clique: 8,
                bridge: 2,
            },
            GraphSpec::CorePeriphery {
                core: 10,
                periphery: 20,
                attach: 3,
            },
        ];
        for spec in specs {
            let g = spec.generate(&mut rng).unwrap();
            assert!(
                g.num_vertices() > 0,
                "{} produced an empty graph",
                spec.label()
            );
            assert!(!spec.label().is_empty());
        }
    }

    #[test]
    fn labels_mention_key_parameters() {
        assert!(GraphSpec::Complete { n: 9 }.label().contains("n=9"));
        assert!(GraphSpec::RandomRegular { n: 10, d: 3 }
            .label()
            .contains("d=3"));
        assert!(GraphSpec::Hypercube { dim: 5 }.label().contains("dim=5"));
    }
}
