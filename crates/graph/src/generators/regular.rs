//! Random `d`-regular graphs via the configuration (pairing) model.
//!
//! Regular graphs are the setting of the Best-of-2 analysis of Cooper,
//! Elsässer & Radzik ([4] in the paper) and the cleanest way to dial the
//! minimum degree exactly to `d = n^α` for the degree-sweep experiment E4.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// Maximum number of restarts of the pairing before switching to repair mode.
const MAX_RESTARTS: usize = 64;
/// Maximum number of repair passes (double-edge swaps) per attempt.
const MAX_REPAIR_SWEEPS: usize = 200;

/// Samples a random simple `d`-regular graph on `n` vertices.
///
/// Uses the configuration model: each vertex gets `d` half-edges ("stubs"),
/// the stubs are paired uniformly at random, and the resulting multigraph is
/// made simple.  For small `d` (relative to `√n`) the pairing is already
/// simple with constant probability and we just restart on failure; for the
/// dense instances used in the paper's regime restarting is hopeless, so
/// defective pairings are *repaired* with uniform double-edge swaps, which
/// preserves regularity and is the standard practical fallback (its bias is
/// negligible for our purposes and irrelevant to the dynamics experiments).
///
/// Requirements: `d < n` and `n·d` even.
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Result<CsrGraph> {
    if d >= n {
        return Err(GraphError::InvalidParameter {
            reason: format!("regular graph needs d < n, got d={d}, n={n}"),
        });
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::Unrealizable {
            reason: format!("n*d must be even, got n={n}, d={d}"),
        });
    }
    if d == 0 {
        return GraphBuilder::new(n).build();
    }
    if d == n - 1 {
        return Ok(super::complete(n));
    }

    for _ in 0..MAX_RESTARTS {
        if let Some(edges) = try_pairing(n, d, rng) {
            return GraphBuilder::with_capacity(n, edges.len())
                .add_edges(edges)?
                .build();
        }
    }
    Err(GraphError::Unrealizable {
        reason: format!("failed to realise a simple {d}-regular graph on {n} vertices"),
    })
}

/// One attempt: pair stubs uniformly, then repair defects by double-edge swaps.
/// Returns `None` if the repair did not converge.
fn try_pairing<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Option<Vec<(usize, usize)>> {
    let total_stubs = n * d;
    let mut stubs: Vec<usize> = (0..total_stubs).map(|s| s / d).collect();
    // Fisher–Yates shuffle of the stub array; consecutive pairs form edges.
    for i in (1..total_stubs).rev() {
        let j = rng.gen_range(0..=i);
        stubs.swap(i, j);
    }
    let mut edges: Vec<(usize, usize)> = stubs
        .chunks_exact(2)
        .map(|c| {
            if c[0] < c[1] {
                (c[0], c[1])
            } else {
                (c[1], c[0])
            }
        })
        .collect();

    // Repair loop: replace self-loops and parallel edges by double-edge swaps.
    use std::collections::HashSet;
    for _ in 0..MAX_REPAIR_SWEEPS {
        let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(edges.len() * 2);
        let mut defects: Vec<usize> = Vec::new();
        for (i, &e) in edges.iter().enumerate() {
            if e.0 == e.1 || !seen.insert(e) {
                defects.push(i);
            }
        }
        if defects.is_empty() {
            return Some(edges);
        }
        let m = edges.len();
        for &i in &defects {
            // Swap the defective edge with a uniformly random partner edge:
            // (a,b),(c,e) -> (a,c),(b,e). Regularity is preserved because
            // every vertex keeps its incidence count.
            let j = rng.gen_range(0..m);
            if i == j {
                continue;
            }
            let (a, b) = edges[i];
            let (c, e) = edges[j];
            let new1 = if a < c { (a, c) } else { (c, a) };
            let new2 = if b < e { (b, e) } else { (e, b) };
            if new1.0 == new1.1 || new2.0 == new2.1 {
                continue;
            }
            edges[i] = new1;
            edges[j] = new2;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_impossible_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_regular(5, 5, &mut rng).is_err()); // d >= n
        assert!(random_regular(5, 3, &mut rng).is_err()); // odd n*d
    }

    #[test]
    fn zero_regular_is_edgeless() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_regular(6, 0, &mut rng).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn full_regular_is_complete() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = random_regular(8, 7, &mut rng).unwrap();
        assert_eq!(g.num_edges(), 28);
    }

    #[test]
    fn every_vertex_has_degree_d_sparse() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(n, d) in &[(20usize, 3usize), (50, 4), (100, 6), (64, 5)] {
            let g = random_regular(n, d, &mut rng).unwrap();
            for v in g.vertices() {
                assert_eq!(g.degree(v), d, "n={n}, d={d}, v={v}");
            }
            assert_eq!(g.num_edges(), n * d / 2);
        }
    }

    #[test]
    fn every_vertex_has_degree_d_dense() {
        let mut rng = StdRng::seed_from_u64(4);
        // Dense regime: d comparable to n, where restarting alone would fail.
        let (n, d) = (60usize, 30usize);
        let g = random_regular(n, d, &mut rng).unwrap();
        for v in g.vertices() {
            assert_eq!(g.degree(v), d);
        }
    }

    #[test]
    fn regular_graphs_are_simple() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_regular(80, 10, &mut rng).unwrap();
        for v in g.vertices() {
            let row = g.neighbours(v);
            assert!(!row.contains(&v), "self-loop at {v}");
            assert!(
                row.windows(2).all(|w| w[0] < w[1]),
                "duplicate neighbour at {v}"
            );
        }
    }

    #[test]
    fn moderately_dense_regular_graphs_are_connected() {
        // Random d-regular graphs with d >= 3 are connected w.h.p.; with a
        // fixed seed this is deterministic.
        let mut rng = StdRng::seed_from_u64(6);
        let g = random_regular(200, 8, &mut rng).unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(8);
        let g1 = random_regular(40, 4, &mut rng1).unwrap();
        let g2 = random_regular(40, 4, &mut rng2).unwrap();
        assert_ne!(g1, g2);
    }
}
