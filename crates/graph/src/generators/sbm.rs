//! Stochastic block models and the planted-partition special case.
//!
//! Dense SBMs are members of the paper's graph family whose community
//! structure lets us place the initial minority adversarially (all blue in
//! one block), probing how far the "independently blue with probability
//! 1/2 − δ" hypothesis can be stretched.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// General stochastic block model.
///
/// `block_sizes[i]` is the number of vertices in block `i`; `probs[i][j]` is
/// the edge probability between blocks `i` and `j` (the matrix must be
/// square, symmetric, with entries in `[0,1]`).  Vertices are numbered block
/// by block.
pub fn stochastic_block_model<R: Rng + ?Sized>(
    block_sizes: &[usize],
    probs: &[Vec<f64>],
    rng: &mut R,
) -> Result<CsrGraph> {
    let k = block_sizes.len();
    if probs.len() != k || probs.iter().any(|row| row.len() != k) {
        return Err(GraphError::InvalidParameter {
            reason: format!("probability matrix must be {k}x{k}"),
        });
    }
    for (i, row) in probs.iter().enumerate() {
        for (j, &p) in row.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(GraphError::InvalidParameter {
                    reason: format!("probability ({i},{j}) = {p} outside [0,1]"),
                });
            }
            if (p - probs[j][i]).abs() > 1e-12 {
                return Err(GraphError::InvalidParameter {
                    reason: format!("probability matrix not symmetric at ({i},{j})"),
                });
            }
        }
    }

    let n: usize = block_sizes.iter().sum();
    // block_of[v] and the starting offset of each block.
    let mut block_of = Vec::with_capacity(n);
    for (b, &size) in block_sizes.iter().enumerate() {
        block_of.extend(std::iter::repeat_n(b, size));
    }

    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = probs[block_of[u]][block_of[v]];
            if p > 0.0 && rng.gen::<f64>() < p {
                builder.push_edge(u, v)?;
            }
        }
    }
    builder.build()
}

/// Planted partition: `blocks` equal blocks of `n / blocks` vertices, edge
/// probability `p_in` within a block and `p_out` across blocks.
/// Requires `blocks ≥ 1` and `blocks` dividing `n`.
pub fn planted_partition<R: Rng + ?Sized>(
    n: usize,
    blocks: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> Result<CsrGraph> {
    if blocks == 0 || !n.is_multiple_of(blocks) {
        return Err(GraphError::InvalidParameter {
            reason: format!("blocks ({blocks}) must be positive and divide n ({n})"),
        });
    }
    let size = n / blocks;
    let sizes = vec![size; blocks];
    let mut probs = vec![vec![p_out; blocks]; blocks];
    for (i, row) in probs.iter_mut().enumerate() {
        row[i] = p_in;
    }
    stochastic_block_model(&sizes, &probs, rng)
}

/// Block membership for the planted-partition numbering: vertex `v` belongs
/// to block `v / (n / blocks)`.
pub fn planted_block_of(n: usize, blocks: usize, v: usize) -> usize {
    v / (n / blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_probability_matrices() {
        let mut rng = StdRng::seed_from_u64(0);
        // wrong shape
        assert!(stochastic_block_model(&[3, 3], &[vec![0.5, 0.5]], &mut rng).is_err());
        // out of range
        assert!(
            stochastic_block_model(&[3, 3], &[vec![0.5, 1.5], vec![1.5, 0.5]], &mut rng).is_err()
        );
        // asymmetric
        assert!(
            stochastic_block_model(&[3, 3], &[vec![0.5, 0.1], vec![0.2, 0.5]], &mut rng).is_err()
        );
    }

    #[test]
    fn planted_partition_validation() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(planted_partition(10, 0, 0.5, 0.1, &mut rng).is_err());
        assert!(planted_partition(10, 3, 0.5, 0.1, &mut rng).is_err());
    }

    #[test]
    fn extreme_probabilities_give_cliques_or_nothing() {
        let mut rng = StdRng::seed_from_u64(2);
        // p_in = 1, p_out = 0: disjoint cliques.
        let g = planted_partition(20, 4, 1.0, 0.0, &mut rng).unwrap();
        assert_eq!(g.num_edges(), 4 * (5 * 4 / 2));
        assert!(!g.has_edge(0, 5));
        assert!(g.has_edge(0, 1));

        // Everything zero: empty graph.
        let e = planted_partition(20, 4, 0.0, 0.0, &mut rng).unwrap();
        assert_eq!(e.num_edges(), 0);
    }

    #[test]
    fn edge_densities_respect_block_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = planted_partition(200, 2, 0.5, 0.05, &mut rng).unwrap();
        let mut within = 0usize;
        let mut across = 0usize;
        for (u, v) in g.edges() {
            if planted_block_of(200, 2, u) == planted_block_of(200, 2, v) {
                within += 1;
            } else {
                across += 1;
            }
        }
        // Expected within ≈ 2 * C(100,2) * 0.5 = 4950; across ≈ 100*100*0.05 = 500.
        assert!(within > 4 * across, "within={within}, across={across}");
    }

    #[test]
    fn block_of_helper() {
        assert_eq!(planted_block_of(20, 4, 0), 0);
        assert_eq!(planted_block_of(20, 4, 4), 0);
        assert_eq!(planted_block_of(20, 4, 5), 1);
        assert_eq!(planted_block_of(20, 4, 19), 3);
    }

    #[test]
    fn heterogeneous_block_sizes() {
        let mut rng = StdRng::seed_from_u64(4);
        let g =
            stochastic_block_model(&[10, 30], &[vec![1.0, 0.0], vec![0.0, 0.0]], &mut rng).unwrap();
        assert_eq!(g.num_vertices(), 40);
        assert_eq!(g.num_edges(), 45); // only the small block is a clique
    }
}
