//! Plain-text edge-list I/O and serde helpers.
//!
//! Format: the first non-comment line is `n m`; each subsequent non-comment
//! line is an edge `u v`.  Lines starting with `#` or `%` are comments.
//! This matches the common SNAP/Konect style closely enough that external
//! graphs can be dropped in for the examples.

use std::io::{BufRead, BufReader, Read, Write as IoWrite};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// Writes `graph` to `writer` in edge-list format.
pub fn write_edge_list<W: IoWrite>(graph: &CsrGraph, writer: &mut W) -> Result<()> {
    writeln!(writer, "# bo3-graph edge list")?;
    writeln!(writer, "{} {}", graph.num_vertices(), graph.num_edges())?;
    for (u, v) in graph.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Reads a graph from an edge-list reader.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph> {
    let buf = BufReader::new(reader);
    let mut header: Option<(usize, usize)> = None;
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_edges = 0usize;
    let mut seen_edges = 0usize;

    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| GraphError::Parse {
            line: line_no,
            reason: e.to_string(),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let a: usize = parts
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: line_no,
                reason: "expected two integers".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: line_no,
                reason: format!("bad integer: {e}"),
            })?;
        let b: usize = parts
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: line_no,
                reason: "expected two integers".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: line_no,
                reason: format!("bad integer: {e}"),
            })?;
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                reason: "expected exactly two integers".into(),
            });
        }
        match (&mut builder, header) {
            (None, None) => {
                header = Some((a, b));
                declared_edges = b;
                builder = Some(GraphBuilder::with_capacity(a, b));
            }
            (Some(b_ref), Some(_)) => {
                b_ref.push_edge(a, b).map_err(|e| GraphError::Parse {
                    line: line_no,
                    reason: e.to_string(),
                })?;
                seen_edges += 1;
            }
            _ => unreachable!("builder and header are set together"),
        }
    }

    let builder = builder.ok_or(GraphError::Parse {
        line: 0,
        reason: "missing header line `n m`".into(),
    })?;
    let graph = builder.build()?;
    if graph.num_edges() != declared_edges && seen_edges != declared_edges {
        return Err(GraphError::Parse {
            line: 0,
            reason: format!("header declared {declared_edges} edges but {seen_edges} were listed"),
        });
    }
    Ok(graph)
}

/// Writes `graph` to the file at `path`.
pub fn save_edge_list<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<()> {
    let mut file = std::fs::File::create(path)?;
    write_edge_list(graph, &mut file)
}

/// Reads a graph from the file at `path`.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn round_trip(g: &CsrGraph) -> CsrGraph {
        let mut buf = Vec::new();
        write_edge_list(g, &mut buf).unwrap();
        read_edge_list(buf.as_slice()).unwrap()
    }

    #[test]
    fn round_trip_complete_graph() {
        let g = generators::complete(8);
        assert_eq!(round_trip(&g), g);
    }

    #[test]
    fn round_trip_path_and_star() {
        let p = generators::path(10).unwrap();
        assert_eq!(round_trip(&p), p);
        let s = generators::star(9).unwrap();
        assert_eq!(round_trip(&s), s);
    }

    #[test]
    fn round_trip_preserves_isolated_vertices() {
        let g = crate::builder::GraphBuilder::new(5)
            .add_edge(0, 1)
            .unwrap()
            .build()
            .unwrap();
        let h = round_trip(&g);
        assert_eq!(h.num_vertices(), 5);
        assert_eq!(h.num_edges(), 1);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# comment\n\n% another\n3 2\n0 1\n# inner\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = read_edge_list("".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(read_edge_list("3 1\n0\n".as_bytes()).is_err());
        assert!(read_edge_list("3 1\n0 x\n".as_bytes()).is_err());
        assert!(read_edge_list("3 1\n0 1 2\n".as_bytes()).is_err());
    }

    #[test]
    fn out_of_range_edge_is_an_error_with_line_number() {
        let err = read_edge_list("2 1\n0 5\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn edge_count_mismatch_is_an_error() {
        let err = read_edge_list("3 5\n0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("bo3_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cycle.edges");
        let g = generators::cycle(12).unwrap();
        save_edge_list(&g, &path).unwrap();
        let h = load_edge_list(&path).unwrap();
        assert_eq!(g, h);
        std::fs::remove_file(&path).ok();
    }
}
