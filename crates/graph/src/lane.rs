//! Batched (draw-ahead) rejection sampling for the hash-defined topologies.
//!
//! The scalar samplers in [`crate::topology`] interleave one RNG draw, one
//! `pair_hash` evaluation and one data-dependent branch per candidate —
//! at `p = 1/2` that branch mispredicts every other try, and the
//! draw → hash → branch chain serialises, which is why implicit `G(n, p)`
//! ran ~15x behind the complete-graph kernel.  This module batches the
//! same computation without changing a single accepted draw:
//!
//! * [`NeighbourLane`] pre-draws a lane of [`LANE_WIDTH`] candidate ids
//!   from the caller's RNG with sequential `next_u64` calls, evaluates the
//!   pairwise hash over [`EVAL_GROUP`]-wide groups at once (hand-unrolled
//!   straight-line array code by default — eight independent `imul` chains
//!   that pipeline on any target — with a runtime-detected AVX2 path on
//!   `x86_64` behind [`set_force_avx2`]), and then *consumes* tries from
//!   the accept bitmask in scalar order with `trailing_zeros` — no
//!   per-candidate branch at all.
//! * [`PairHashSpec`] is the copyable description of a frozen-hash edge
//!   set (`G(n, p)` or the planted-partition SBM) the lane evaluates — the
//!   same seed, thresholds and block structure as the owning topology, so
//!   the accept predicate is bit-identical to the scalar `has_edge` test.
//!
//! # The draw-ahead RNG contract
//!
//! A lane consumes the underlying stream **in order**: candidate `i` of a
//! refill always comes from the `i`-th `next_u64` after the previous
//! refill, and accepted neighbours (with their per-draw try counts) are
//! exactly the scalar sampler's.  What changes is only the RNG's *final
//! position*: a lane may have pre-drawn tail values that no sample ever
//! consumed.  The lane is therefore only used where the RNG is scoped to
//! the work unit and dropped afterwards — the seeded synchronous kernels
//! (one stream per `(seed, round, chunk)`) and the seeded asynchronous
//! round (one stream per round).  Caller-RNG entry points keep the strict
//! scalar sampler, whose stream position is part of their contract.
//!
//! The same group-evaluation machinery drives the mask-based row iteration
//! (`row_for_each` / `row_degree`) used by `for_each_neighbour` and
//! `degree` on the hash-defined topologies: candidate ids are evaluated in
//! blocks into a 64-bit accept mask and non-edges are skipped with
//! `trailing_zeros`, one or two instructions per gap instead of a hash plus
//! a mispredicted branch each.  (A literal geometric skip — drawing gap
//! lengths from a generator, as the materialised `erdos_renyi` builder
//! does — would define a *different* edge set than the frozen hash, so the
//! mask walk is the strongest skip strategy that preserves the graph.)

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use rand::RngCore;

use crate::topology::{lemire_index, mix64, pair_hash, MAX_REJECTIONS};

/// Candidates pre-drawn per lane refill.
pub const LANE_WIDTH: usize = 32;

/// Candidates whose accept bits are evaluated at once.  Groups are
/// evaluated lazily as the consumer advances, so switching vertices
/// mid-lane re-evaluates at most one partially consumed group.
pub const EVAL_GROUP: usize = 8;

const K1: u64 = 0x9E37_79B9_7F4A_7C15;
const K2: u64 = 0xD6E8_FEB8_6659_FD93;

/// Which frozen family a [`PairHashSpec`] came from — carried so the lane
/// can reproduce the owning topology's exact isolated-vertex panic.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Family {
    Gnp {
        p: f64,
    },
    Sbm {
        blocks: usize,
        p_in: f64,
        p_out: f64,
    },
}

/// A copyable description of a frozen-hash edge set: everything the lane
/// evaluator needs to decide `has_edge(v, w)` exactly as the owning
/// [`crate::ImplicitGnp`] / [`crate::ImplicitSbm`] does.
///
/// `G(n, p)` is the single-block special case (`block_size == n`), so one
/// evaluator covers both families: a candidate in `v`'s block compares
/// against the in-block threshold, everything else against the cross-block
/// one.  Thresholds are the 65-bit `p·2⁶⁴` values split into a `u64`
/// compare plus an accept-everything flag for `p = 1` (whose threshold,
/// `2⁶⁴` exactly, no `u64` can express).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairHashSpec {
    seed: u64,
    n: usize,
    block_size: usize,
    thr_in: u64,
    all_in: bool,
    thr_out: u64,
    all_out: bool,
    family: Family,
}

/// Splits a 65-bit `p·2⁶⁴` threshold into the `u64` compare value and the
/// accept-everything flag (`p = 1`).
fn split_threshold(threshold: u128) -> (u64, bool) {
    if threshold >= 1u128 << 64 {
        (0, true)
    } else {
        (threshold as u64, false)
    }
}

impl PairHashSpec {
    /// The spec of an implicit `G(n, p)` frozen under `seed`.
    pub(crate) fn gnp(n: usize, p: f64, seed: u64, threshold: u128) -> Self {
        let (thr, all) = split_threshold(threshold);
        PairHashSpec {
            seed,
            n,
            block_size: n,
            thr_in: thr,
            all_in: all,
            thr_out: thr,
            all_out: all,
            family: Family::Gnp { p },
        }
    }

    /// The spec of an implicit planted-partition SBM frozen under `seed`.
    #[allow(clippy::too_many_arguments)] // crate-private constructor mirroring the topology's fields
    pub(crate) fn sbm(
        n: usize,
        block_size: usize,
        p_in: f64,
        p_out: f64,
        seed: u64,
        threshold_in: u128,
        threshold_out: u128,
    ) -> Self {
        let (thr_in, all_in) = split_threshold(threshold_in);
        let (thr_out, all_out) = split_threshold(threshold_out);
        PairHashSpec {
            seed,
            n,
            block_size,
            thr_in,
            all_in,
            thr_out,
            all_out,
            family: Family::Sbm {
                blocks: n / block_size,
                p_in,
                p_out,
            },
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The half-open id range `[lo, hi)` of `v`'s block (`[0, n)` for
    /// `G(n, p)`), so the per-candidate block test is two comparisons.
    ///
    /// The single-block case skips the division: `block_bounds` runs once
    /// per vertex on the sampling hot path, and a 64-bit divide is ~30
    /// cycles the `G(n, p)` lane would pay for a constant answer.
    #[inline(always)]
    fn block_bounds(&self, v: usize) -> (u64, u64) {
        if self.block_size == self.n {
            (0, self.n as u64)
        } else {
            let lo = (v / self.block_size) * self.block_size;
            (lo as u64, (lo + self.block_size) as u64)
        }
    }

    /// The scalar accept predicate for candidate `w` of vertex `v` —
    /// bit-identical to the owning topology's `has_edge(v, w)` for valid
    /// `w != v`.
    #[inline(always)]
    fn accept_one(&self, v: usize, w: usize, blk_lo: u64, blk_hi: u64) -> bool {
        let wu = w as u64;
        let (thr, all) = if wu >= blk_lo && wu < blk_hi {
            (self.thr_in, self.all_in)
        } else {
            (self.thr_out, self.all_out)
        };
        all || pair_hash(self.seed, v, w) < thr
    }

    /// The owning topology's label (used by the shared isolated panic).
    fn label(&self) -> String {
        match self.family {
            Family::Gnp { p } => format!("implicit_gnp(n={},p={})", self.n, p),
            Family::Sbm {
                blocks,
                p_in,
                p_out,
            } => format!(
                "implicit_sbm(n={},blocks={},p_in={},p_out={})",
                self.n, blocks, p_in, p_out
            ),
        }
    }

    /// The single isolated-vertex failure both the scalar and the batched
    /// samplers raise after [`MAX_REJECTIONS`] consecutive misses — one
    /// source, so the two paths cannot drift apart.
    #[cold]
    pub(crate) fn isolated_panic(&self, v: usize) -> ! {
        match self.family {
            Family::Gnp { p } => panic!(
                "vertex {v} of {} appears isolated (p = {p}): implicit G(n,p) requires the dense \
                 regime",
                self.label()
            ),
            Family::Sbm { .. } => panic!(
                "vertex {v} of {} appears isolated: implicit SBM requires the dense regime",
                self.label()
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);
static ENV_FORCE_SCALAR: OnceLock<bool> = OnceLock::new();
static FORCE_AVX2: AtomicBool = AtomicBool::new(false);
static ENV_FORCE_AVX2: OnceLock<bool> = OnceLock::new();

/// Forces every group evaluation onto the portable scalar path (used by the
/// scalar-fallback coverage test and for A/B benchmarking).  Both backends
/// compute identical accept bits, so toggling this mid-run only changes
/// speed, never results.
pub fn set_force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Opts group evaluation into the AVX2 path when the CPU supports it
/// (also reachable via `BO3_SAMPLER_FORCE_AVX2=1`).  The AVX2 evaluator is
/// cross-checked against the portable one but **not** the default: AVX2
/// lacks a 64-bit vector multiply, so each `mix64` multiply decomposes
/// into three `vpmuludq` partial products and the vector path measures
/// ~1.5x *slower* per candidate than the eight independent pipelined
/// scalar `imul` chains of [`set_force_scalar`]'s target.  A losing
/// [`set_force_scalar`] call takes precedence over this one.
pub fn set_force_avx2(on: bool) {
    FORCE_AVX2.store(on, Ordering::Relaxed);
}

fn force_scalar() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed)
        || *ENV_FORCE_SCALAR.get_or_init(|| {
            std::env::var_os("BO3_SAMPLER_FORCE_SCALAR").is_some_and(|v| v != "0" && !v.is_empty())
        })
}

fn force_avx2() -> bool {
    FORCE_AVX2.load(Ordering::Relaxed)
        || *ENV_FORCE_AVX2.get_or_init(|| {
            std::env::var_os("BO3_SAMPLER_FORCE_AVX2").is_some_and(|v| v != "0" && !v.is_empty())
        })
}

/// The group-evaluation backend currently in effect: `"scalar"` (the
/// default — the hand-unrolled portable evaluator) or `"avx2"` (opted in
/// via [`set_force_avx2`] / `BO3_SAMPLER_FORCE_AVX2=1` on a CPU that has
/// it).
pub fn simd_backend() -> &'static str {
    if select_avx2() {
        "avx2"
    } else {
        "scalar"
    }
}

/// Resolves the group-evaluation backend once: `true` means the AVX2 path
/// (runtime-detected AND explicitly opted in — see [`set_force_avx2`] for
/// why the portable evaluator wins by default).  Callers cache the answer
/// per lane or per row walk so the hot loop pays no atomic loads or
/// feature detection per group.
#[inline]
fn select_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        force_avx2() && !force_scalar() && std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Evaluates the accept bits of eight candidates of `v` at once.
/// `use_avx2` is the cached [`select_avx2`] answer — passing `true` is only
/// sound right after a successful detection, which is the only way callers
/// obtain it.
#[inline]
fn eval8(
    use_avx2: bool,
    spec: &PairHashSpec,
    v: u64,
    blk_lo: u64,
    blk_hi: u64,
    w: &[u64; 8],
) -> u8 {
    #[cfg(target_arch = "x86_64")]
    {
        if use_avx2 {
            return avx2::eval8_detected(spec, v, blk_lo, blk_hi, w);
        }
    }
    eval8_scalar(spec, v, blk_lo, blk_hi, w)
}

/// The portable group evaluator: hand-unrolled array passes with no
/// data-dependent branch, so the whole hash chain pipelines (and the
/// multiply-free passes autovectorize) on any target.  This is the
/// mandatory fallback the AVX2 path must agree with bit for bit.
fn eval8_scalar(spec: &PairHashSpec, v: u64, blk_lo: u64, blk_hi: u64, w: &[u64; 8]) -> u8 {
    let mut h = [0u64; 8];
    for i in 0..8 {
        let a = w[i].min(v);
        h[i] = spec.seed.wrapping_add(a.wrapping_mul(K1));
    }
    for x in &mut h {
        *x = mix64(*x);
    }
    for i in 0..8 {
        let b = w[i].max(v);
        h[i] ^= b.wrapping_mul(K2);
    }
    for x in &mut h {
        *x = mix64(*x);
    }
    let mut bits = 0u8;
    for i in 0..8 {
        let in_block = w[i] >= blk_lo && w[i] < blk_hi;
        let accept = if in_block {
            spec.all_in || h[i] < spec.thr_in
        } else {
            spec.all_out || h[i] < spec.thr_out
        };
        bits |= (accept as u8) << i;
    }
    bits
}

/// The runtime-detected AVX2 group evaluator.
///
/// AVX2 has no 64-bit multiply, unsigned 64-bit compare or 64-bit min/max,
/// so all three are composed: the multiply from three `vpmuludq` 32×32
/// partial products, the compare from a sign-bias plus `vpcmpgtq`, min/max
/// from that compare plus a blend.  The isolated `unsafe` here is the one
/// `#[target_feature]` call, guarded by `is_x86_feature_detected!`.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use super::PairHashSpec;
    use std::arch::x86_64::*;

    /// Safe wrapper for callers that already selected the AVX2 backend: the
    /// `is_x86_feature_detected!` re-check is one cached relaxed atomic
    /// load (std memoises it), so safety never rests on the caller's cached
    /// flag being honest — a stale `true` merely falls back to the scalar
    /// evaluator.
    #[inline]
    pub(super) fn eval8_detected(
        spec: &PairHashSpec,
        v: u64,
        blk_lo: u64,
        blk_hi: u64,
        w: &[u64; 8],
    ) -> u8 {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 feature was just detected at runtime.
            unsafe { eval8_impl(spec, v, blk_lo, blk_hi, w) }
        } else {
            super::eval8_scalar(spec, v, blk_lo, blk_hi, w)
        }
    }

    /// `x · y mod 2⁶⁴` per 64-bit element from 32×32 partial products.
    #[inline(always)]
    unsafe fn mul64(x: __m256i, y: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(x, y);
        let xh = _mm256_srli_epi64::<32>(x);
        let yh = _mm256_srli_epi64::<32>(y);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(xh, y), _mm256_mul_epu32(x, yh));
        _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(cross))
    }

    /// Unsigned `a < b` per 64-bit element (sign-biased signed compare).
    #[inline(always)]
    unsafe fn lt_u64(a: __m256i, b: __m256i) -> __m256i {
        let bias = _mm256_set1_epi64x(i64::MIN);
        _mm256_cmpgt_epi64(_mm256_xor_si256(b, bias), _mm256_xor_si256(a, bias))
    }

    /// The SplitMix64 finaliser per 64-bit element.
    #[inline(always)]
    unsafe fn mix64v(z: __m256i) -> __m256i {
        let z = _mm256_xor_si256(z, _mm256_srli_epi64::<30>(z));
        let z = mul64(z, _mm256_set1_epi64x(0xBF58_476D_1CE4_E5B9u64 as i64));
        let z = _mm256_xor_si256(z, _mm256_srli_epi64::<27>(z));
        let z = mul64(z, _mm256_set1_epi64x(0x94D0_49BB_1331_11EBu64 as i64));
        _mm256_xor_si256(z, _mm256_srli_epi64::<31>(z))
    }

    /// Four accept bits for one vector of candidates.
    #[inline(always)]
    unsafe fn eval4(
        spec: &PairHashSpec,
        vv: __m256i,
        blk_lo: __m256i,
        blk_hi: __m256i,
        wv: __m256i,
    ) -> u8 {
        // Canonicalise the pair: a = min(v, w), b = max(v, w).
        let w_lt_v = lt_u64(wv, vv);
        let a = _mm256_blendv_epi8(vv, wv, w_lt_v);
        let b = _mm256_blendv_epi8(wv, vv, w_lt_v);
        // pair_hash: two chained SplitMix64 finalisation rounds.
        let seed = _mm256_set1_epi64x(spec.seed as i64);
        let lo = mix64v(_mm256_add_epi64(
            seed,
            mul64(a, _mm256_set1_epi64x(super::K1 as i64)),
        ));
        let h = mix64v(_mm256_xor_si256(
            lo,
            mul64(b, _mm256_set1_epi64x(super::K2 as i64)),
        ));
        // Threshold class: candidates inside v's block use the in-block
        // threshold, everything else the cross-block one.
        let in_block = _mm256_andnot_si256(lt_u64(wv, blk_lo), lt_u64(wv, blk_hi));
        let thr = _mm256_blendv_epi8(
            _mm256_set1_epi64x(spec.thr_out as i64),
            _mm256_set1_epi64x(spec.thr_in as i64),
            in_block,
        );
        let all_in = _mm256_set1_epi64x(if spec.all_in { -1 } else { 0 });
        let all_out = _mm256_set1_epi64x(if spec.all_out { -1 } else { 0 });
        let always = _mm256_or_si256(
            _mm256_and_si256(in_block, all_in),
            _mm256_andnot_si256(in_block, all_out),
        );
        let accept = _mm256_or_si256(lt_u64(h, thr), always);
        _mm256_movemask_pd(_mm256_castsi256_pd(accept)) as u8 & 0x0F
    }

    #[target_feature(enable = "avx2")]
    unsafe fn eval8_impl(
        spec: &PairHashSpec,
        v: u64,
        blk_lo: u64,
        blk_hi: u64,
        w: &[u64; 8],
    ) -> u8 {
        let vv = _mm256_set1_epi64x(v as i64);
        let lo = _mm256_set1_epi64x(blk_lo as i64);
        let hi = _mm256_set1_epi64x(blk_hi as i64);
        let w0 = _mm256_loadu_si256(w.as_ptr().cast());
        let w1 = _mm256_loadu_si256(w.as_ptr().add(4).cast());
        eval4(spec, vv, lo, hi, w0) | (eval4(spec, vv, lo, hi, w1) << 4)
    }
}

// ---------------------------------------------------------------------------
// The draw-ahead lane
// ---------------------------------------------------------------------------

/// A draw-ahead rejection-sampling lane over one [`PairHashSpec`].
///
/// Pre-draws [`LANE_WIDTH`] candidate ids per refill, evaluates accept
/// bits in [`EVAL_GROUP`]-wide batches for the current vertex, and serves
/// `sample` calls by scanning the accept bitmask — consuming the RNG
/// stream in exactly the scalar sampler's order, so accepted neighbours
/// and per-draw try counts are bit-identical (see the module docs for the
/// tail-discard contract this rests on).
#[derive(Debug, Clone)]
pub struct NeighbourLane {
    spec: PairHashSpec,
    /// Lemire-reduced candidate indices in `[0, n-1)` — vertex-independent,
    /// computed once per refill.
    idx: [u64; LANE_WIDTH],
    /// Accept bits for lane positions `[cursor, eval_end)`, valid for
    /// `eval_v`.
    accept: u64,
    cursor: usize,
    eval_end: usize,
    eval_v: usize,
    blk_lo: u64,
    blk_hi: u64,
    /// Cached backend selection (see [`select_avx2`]), so the hot loop
    /// pays no detection per group.
    avx2: bool,
    drawn: u64,
    consumed: u64,
}

impl NeighbourLane {
    /// An empty lane over `spec`; the first `sample` call refills it.
    pub fn new(spec: PairHashSpec) -> Self {
        NeighbourLane {
            spec,
            idx: [0; LANE_WIDTH],
            accept: 0,
            cursor: LANE_WIDTH,
            eval_end: LANE_WIDTH,
            eval_v: usize::MAX,
            blk_lo: 0,
            blk_hi: 0,
            avx2: select_avx2(),
            drawn: 0,
            consumed: 0,
        }
    }

    /// Total candidates pre-drawn from the RNG (a multiple of
    /// [`LANE_WIDTH`]).
    pub fn drawn(&self) -> u64 {
        self.drawn
    }

    /// Total candidates consumed as tries; `drawn − consumed` is the
    /// discarded tail plus whatever is still buffered.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    #[inline]
    fn refill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        let range = self.spec.n - 1;
        for slot in &mut self.idx {
            *slot = lemire_index(rng.next_u64(), range) as u64;
        }
        self.cursor = 0;
        self.eval_end = 0;
        self.accept = 0;
        self.drawn += LANE_WIDTH as u64;
    }

    /// Extends the evaluated window by one group (starting at `cursor`).
    #[inline]
    fn eval_group(&mut self, v: usize) {
        let start = self.eval_end;
        let len = EVAL_GROUP.min(LANE_WIDTH - start);
        let vu = v as u64;
        let mut w = [0u64; EVAL_GROUP];
        for (i, slot) in w.iter_mut().enumerate().take(len) {
            let idx = self.idx[start + i];
            *slot = idx + u64::from(idx >= vu);
        }
        let bits = if len == EVAL_GROUP {
            eval8(self.avx2, &self.spec, vu, self.blk_lo, self.blk_hi, &w) as u64
        } else {
            let mut bits = 0u64;
            for (i, &wi) in w.iter().enumerate().take(len) {
                bits |= (self
                    .spec
                    .accept_one(v, wi as usize, self.blk_lo, self.blk_hi)
                    as u64)
                    << i;
            }
            bits
        };
        self.accept &= !(((1u64 << len) - 1) << start);
        self.accept |= bits << start;
        self.eval_end = start + len;
    }

    /// Samples one uniform random neighbour of `v`, returning the
    /// neighbour and the number of candidate tries it consumed — exactly
    /// the scalar `sample_neighbour_tries` result for the same stream.
    ///
    /// Panics with the owning topology's isolated-vertex message after
    /// `MAX_REJECTIONS` consecutive misses, at the same miss count as
    /// the scalar path.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&mut self, v: usize, rng: &mut R) -> (usize, u64) {
        if v != self.eval_v {
            self.eval_v = v;
            let (lo, hi) = self.spec.block_bounds(v);
            self.blk_lo = lo;
            self.blk_hi = hi;
            // Accept bits are vertex-dependent: discard the unconsumed
            // window (candidate *indices* stay valid — they are
            // vertex-independent by construction).
            self.eval_end = self.cursor;
        }
        let cap = MAX_REJECTIONS as u64;
        let mut tries = 0u64;
        loop {
            if self.cursor == LANE_WIDTH {
                self.refill(rng);
            }
            if self.eval_end == self.cursor {
                self.eval_group(self.eval_v);
            }
            let window = (self.accept & ((1u64 << self.eval_end) - 1)) >> self.cursor;
            if window != 0 {
                let gap = window.trailing_zeros() as u64;
                if tries + gap >= cap {
                    // The scalar loop would have hit its miss cap before
                    // ever drawing this accepted candidate.
                    self.spec.isolated_panic(v);
                }
                tries += gap + 1;
                let pos = self.cursor + gap as usize;
                self.cursor = pos + 1;
                self.consumed += gap + 1;
                let idx = self.idx[pos] as usize;
                return (idx + usize::from(idx >= v), tries);
            }
            let misses = (self.eval_end - self.cursor) as u64;
            tries += misses;
            self.consumed += misses;
            self.cursor = self.eval_end;
            if tries >= cap {
                self.spec.isolated_panic(v);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mask-based row iteration
// ---------------------------------------------------------------------------

/// Builds the 64-candidate accept mask for `w ∈ [base, base + count)`
/// (count ≤ 64), with the self bit cleared.
#[inline]
#[allow(clippy::too_many_arguments)] // private row-walk plumbing
fn row_mask(
    use_avx2: bool,
    spec: &PairHashSpec,
    v: usize,
    blk_lo: u64,
    blk_hi: u64,
    base: usize,
    count: usize,
) -> u64 {
    let vu = v as u64;
    let mut mask = 0u64;
    let mut off = 0usize;
    while off + EVAL_GROUP <= count {
        let mut w = [0u64; EVAL_GROUP];
        for (i, slot) in w.iter_mut().enumerate() {
            *slot = (base + off + i) as u64;
        }
        mask |= (eval8(use_avx2, spec, vu, blk_lo, blk_hi, &w) as u64) << off;
        off += EVAL_GROUP;
    }
    while off < count {
        mask |= (spec.accept_one(v, base + off, blk_lo, blk_hi) as u64) << off;
        off += 1;
    }
    if v >= base && v < base + count {
        mask &= !(1u64 << (v - base));
    }
    mask
}

/// Calls `f` for every neighbour of `v` in ascending id order — the
/// mask-walk row iteration behind `for_each_neighbour` on the hash-defined
/// topologies.  Visits exactly the scalar `has_edge` row.
pub(crate) fn row_for_each<F: FnMut(usize)>(spec: &PairHashSpec, v: usize, mut f: F) {
    let n = spec.n;
    let use_avx2 = select_avx2();
    let (blk_lo, blk_hi) = spec.block_bounds(v);
    let mut base = 0usize;
    while base < n {
        let count = 64.min(n - base);
        let mut mask = row_mask(use_avx2, spec, v, blk_lo, blk_hi, base, count);
        while mask != 0 {
            f(base + mask.trailing_zeros() as usize);
            mask &= mask - 1;
        }
        base += count;
    }
}

/// The degree of `v` — a popcount over the same masks [`row_for_each`]
/// walks.
pub(crate) fn row_degree(spec: &PairHashSpec, v: usize) -> usize {
    let n = spec.n;
    let use_avx2 = select_avx2();
    let (blk_lo, blk_hi) = spec.block_bounds(v);
    let mut degree = 0usize;
    let mut base = 0usize;
    while base < n {
        let count = 64.min(n - base);
        degree += row_mask(use_avx2, spec, v, blk_lo, blk_hi, base, count).count_ones() as usize;
        base += count;
    }
    degree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ImplicitGnp, ImplicitSbm, Topology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The vertex visit pattern the kernels produce: a few consecutive
    /// samples per vertex, vertices ascending, plus some revisits.
    fn visit_pattern(n: usize) -> Vec<usize> {
        let mut vs = Vec::new();
        for v in (0..n).step_by(3) {
            for _ in 0..3 {
                vs.push(v);
            }
        }
        vs.extend([0, n - 1, n / 2, n / 2, 1]);
        vs
    }

    fn assert_lane_matches_scalar<T: Topology>(topo: &T, seed: u64) {
        let spec = topo.pair_hash_spec().expect("hash-defined topology");
        let mut lane = NeighbourLane::new(spec);
        let mut lane_rng = StdRng::seed_from_u64(seed);
        let mut scalar_rng = StdRng::seed_from_u64(seed);
        for v in visit_pattern(topo.n()) {
            let got = lane.sample(v, &mut lane_rng);
            let want = topo.sample_neighbour_tries(v, &mut scalar_rng);
            assert_eq!(got, want, "vertex {v} diverged");
        }
        assert!(lane.consumed() <= lane.drawn());
        assert_eq!(lane.drawn() % LANE_WIDTH as u64, 0);
    }

    #[test]
    fn lane_matches_scalar_sampler_on_gnp_across_densities() {
        for &p in &[0.05, 0.3, 0.5, 0.9, 1.0] {
            let topo = ImplicitGnp::new(97, p, 11).unwrap();
            assert_lane_matches_scalar(&topo, 400 + (p * 10.0) as u64);
        }
    }

    #[test]
    fn lane_matches_scalar_sampler_on_sbm_across_densities() {
        for &(p_in, p_out) in &[(0.7, 0.05), (0.3, 0.3), (0.9, 0.5), (1.0, 0.2), (0.05, 0.9)] {
            let topo = ImplicitSbm::new(96, 4, p_in, p_out, 23).unwrap();
            assert_lane_matches_scalar(&topo, 800 + (p_in * 10.0) as u64);
        }
    }

    #[test]
    fn forced_scalar_backend_matches_the_default_backend() {
        // The cfg coverage test for the portable path: forcing scalar must
        // agree with whatever backend is in effect by default.
        let topo = ImplicitGnp::new(101, 0.37, 5).unwrap();
        let spec = topo.pair_hash_spec().unwrap();
        let run = |force: bool| {
            set_force_scalar(force);
            let mut lane = NeighbourLane::new(spec);
            let mut rng = StdRng::seed_from_u64(99);
            let out: Vec<(usize, u64)> = visit_pattern(101)
                .into_iter()
                .map(|v| lane.sample(v, &mut rng))
                .collect();
            set_force_scalar(false);
            out
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn avx2_backend_matches_the_portable_backend_when_available() {
        // On AVX2 hosts this pins the vector evaluator bit-for-bit against
        // the portable one over full lane runs (samples AND try counts);
        // elsewhere the opt-in is a no-op and both runs take the portable
        // path, keeping the test green on any runner.
        let gnp = ImplicitGnp::new(103, 0.43, 17).unwrap();
        let sbm = ImplicitSbm::new(102, 3, 0.8, 0.1, 31).unwrap();
        let run = |spec: PairHashSpec, n: usize, avx2: bool| {
            set_force_avx2(avx2);
            let mut lane = NeighbourLane::new(spec);
            let mut rng = StdRng::seed_from_u64(4242);
            let out: Vec<(usize, u64)> = visit_pattern(n)
                .into_iter()
                .map(|v| lane.sample(v, &mut rng))
                .collect();
            set_force_avx2(false);
            out
        };
        for (spec, n) in [
            (gnp.pair_hash_spec().unwrap(), 103),
            (sbm.pair_hash_spec().unwrap(), 102),
        ] {
            assert_eq!(run(spec, n, true), run(spec, n, false));
        }
        assert_eq!(simd_backend(), "scalar");
    }

    #[test]
    fn row_masks_match_the_scalar_has_edge_row() {
        let gnp = ImplicitGnp::new(150, 0.4, 7).unwrap();
        let sbm = ImplicitSbm::new(150, 3, 0.6, 0.1, 9).unwrap();
        let gspec = gnp.pair_hash_spec().unwrap();
        let sspec = sbm.pair_hash_spec().unwrap();
        for v in [0usize, 1, 49, 50, 77, 149] {
            let mut got = Vec::new();
            row_for_each(&gspec, v, |w| got.push(w));
            let want: Vec<usize> = (0..150).filter(|&w| gnp.has_edge(v, w)).collect();
            assert_eq!(got, want, "gnp row of {v}");
            assert_eq!(row_degree(&gspec, v), want.len());

            let mut got = Vec::new();
            row_for_each(&sspec, v, |w| got.push(w));
            let want: Vec<usize> = (0..150).filter(|&w| sbm.has_edge(v, w)).collect();
            assert_eq!(got, want, "sbm row of {v}");
            assert_eq!(row_degree(&sspec, v), want.len());
        }
    }

    #[test]
    fn accept_all_threshold_accepts_every_candidate_in_one_try() {
        let topo = ImplicitGnp::new(64, 1.0, 3).unwrap();
        let spec = topo.pair_hash_spec().unwrap();
        let mut lane = NeighbourLane::new(spec);
        let mut rng = StdRng::seed_from_u64(1);
        for v in 0..64 {
            let (w, tries) = lane.sample(v, &mut rng);
            assert_ne!(w, v);
            assert!(w < 64);
            assert_eq!(tries, 1);
        }
    }

    #[test]
    #[should_panic(expected = "appears isolated")]
    fn lane_raises_the_isolated_panic_on_a_near_empty_gnp() {
        // p ≈ 0: the accept threshold is ~18 of 2⁶⁴, so every candidate
        // misses and the lane must trip the same rejection cap (and
        // message) as the scalar sampler.
        let topo = ImplicitGnp::new(8, 1e-18, 3).unwrap();
        let mut lane = NeighbourLane::new(topo.pair_hash_spec().unwrap());
        let mut rng = StdRng::seed_from_u64(2);
        lane.sample(0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "appears isolated")]
    fn scalar_sampler_raises_the_same_isolated_panic() {
        let topo = ImplicitGnp::new(8, 1e-18, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        topo.sample_neighbour(0, &mut rng);
    }
}
