//! # bo3-graph
//!
//! Graph substrate for the reproduction of *“Best-of-Three Voting on Dense
//! Graphs”* (Kang & Rivera, SPAA 2019).
//!
//! The crate provides everything the voting dynamics and the voting-DAG
//! analysis need from a graph:
//!
//! * [`CsrGraph`] — flat, cache-friendly compressed-sparse-row storage with
//!   `O(1)` degree lookup and `O(1)` indexed neighbour access, the two
//!   operations that dominate the dynamics' running time;
//! * [`builder::GraphBuilder`] — incremental construction from edge lists;
//! * [`generators`] — the graph families used by the experiments, from the
//!   complete graph of the prior literature to dense Erdős–Rényi, random
//!   regular, SBM and core–periphery graphs in the paper's `d = n^α` regime,
//!   plus sparse negative controls (cycles, grids, hypercubes, barbells);
//! * [`sampling`] — uniform with-replacement neighbour sampling (the paper's
//!   model) and alias tables for weighted distributions;
//! * [`topology`] — the [`Topology`] trait and its *implicit* (procedural)
//!   implementations: dense graph families defined by arithmetic or a
//!   deterministic pairwise hash, so million-vertex complete / `G(n, p)` /
//!   SBM instances never materialise a single edge;
//! * [`degree`], [`spectral`], [`traversal`], [`properties`] — the
//!   diagnostics used to check that generated instances actually satisfy the
//!   hypotheses of Theorem 1 (minimum degree `n^α`) or of the competing
//!   expander conditions (`λ₂`);
//! * [`io`] — plain-text edge-list input/output.
//!
//! ## Quick example
//!
//! ```
//! use bo3_graph::generators;
//! use bo3_graph::degree::DegreeStats;
//!
//! let g = generators::complete(100);
//! let stats = DegreeStats::of(&g).unwrap();
//! assert_eq!(stats.min, 99);
//! assert!(stats.alpha().unwrap() > 0.95); // d = n^alpha with alpha ~ 1
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod builder;
pub mod csr;
pub mod degree;
pub mod error;
pub mod generators;
pub mod io;
pub mod lane;
pub mod metered;
pub mod oracle;
pub mod properties;
pub mod sampling;
pub mod spec;
pub mod spectral;
pub mod topology;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::{CsrGraph, VertexId};
pub use error::{GraphError, Result};
pub use lane::{NeighbourLane, PairHashSpec, LANE_WIDTH};
pub use metered::MeteredTopology;
pub use oracle::{DegreeClass, DegreeOracle, DegreeWindow, DEGREE_ORACLE_FAILURE_PROBABILITY};
pub use sampling::NeighbourSampler;
pub use spec::{BuiltTopology, TopologySpec, GRAPH_SEED_SALT};
pub use topology::{
    Complete, CompleteBipartite, CompleteMultipartite, CsrTopology, ImplicitGnp, ImplicitSbm,
    ScalarSampled, Topology,
};

/// Largest vertex count the dense whole-graph analyses (`spectral::lambda2`,
/// clustering/triangle scans, implicit-topology materialisation) will accept.
///
/// These diagnostics do work proportional to `n²` (or to `m`, which is
/// `Θ(n²)` in the dense regime this crate targets); beyond this size they
/// return [`GraphError::TooLarge`] instead of silently attempting hours of
/// work or terabytes of allocation.  Million-vertex experiments use the
/// implicit [`topology`] layer, whose closed forms need none of them.
pub const DENSE_ANALYSIS_VERTEX_LIMIT: usize = 100_000;
