//! A transparent metering wrapper over any [`Topology`].
//!
//! [`MeteredTopology`] forwards every trait method to the wrapped topology
//! unchanged and additionally records rejection-sampling effort (tries and
//! accepted draws) into a [`SamplerMeter`].  The wrapper consumes **no**
//! randomness of its own: sampling goes through
//! [`Topology::sample_neighbour_tries`], whose contract guarantees the RNG
//! stream is identical to the unmetered [`Topology::sample_neighbour`]
//! path.  Routing decisions made by callers (`as_csr`, `as_graph`,
//! `is_all_but_self`, `cheap_rows`, `degree_oracle`) are forwarded too, so
//! the dynamics kernels take exactly the same code paths with or without
//! the meter — bit-identity of metered runs is structural, not accidental.

use bo3_obs::SamplerMeter;
use rand::RngCore;

use crate::csr::{CsrGraph, VertexId};
use crate::lane::PairHashSpec;
use crate::oracle::DegreeOracle;
use crate::topology::Topology;

/// A [`Topology`] wrapper that counts sampler tries/accepts into a
/// [`SamplerMeter`] without perturbing the wrapped topology's RNG stream.
#[derive(Clone, Copy)]
pub struct MeteredTopology<'a, T: Topology> {
    inner: &'a T,
    meter: &'a SamplerMeter,
}

impl<'a, T: Topology> MeteredTopology<'a, T> {
    /// Wraps `inner`, recording every neighbour draw into `meter`.
    pub fn new(inner: &'a T, meter: &'a SamplerMeter) -> Self {
        MeteredTopology { inner, meter }
    }

    /// The wrapped topology.
    pub fn inner(&self) -> &'a T {
        self.inner
    }

    /// The meter draws are recorded into.
    pub fn meter(&self) -> &'a SamplerMeter {
        self.meter
    }
}

impl<T: Topology> Topology for MeteredTopology<'_, T> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.inner.degree(v)
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.inner.has_edge(u, v)
    }

    #[inline(always)]
    fn sample_neighbour<R: RngCore + ?Sized>(&self, v: VertexId, rng: &mut R) -> VertexId {
        let (w, tries) = self.inner.sample_neighbour_tries(v, rng);
        self.meter.record(tries);
        w
    }

    #[inline(always)]
    fn sample_neighbour_tries<R: RngCore + ?Sized>(
        &self,
        v: VertexId,
        rng: &mut R,
    ) -> (VertexId, u64) {
        let (w, tries) = self.inner.sample_neighbour_tries(v, rng);
        self.meter.record(tries);
        (w, tries)
    }

    // `sample_neighbours_into` deliberately uses the trait default (a loop
    // over `sample_neighbour`): no concrete topology overrides it, so the
    // default consumes the RNG identically to the wrapped topology *and*
    // meters every draw.

    fn for_each_neighbour<F: FnMut(VertexId)>(&self, v: VertexId, f: F) {
        self.inner.for_each_neighbour(v, f)
    }

    fn as_csr(&self) -> Option<(&[usize], &[VertexId])> {
        self.inner.as_csr()
    }

    fn as_graph(&self) -> Option<&CsrGraph> {
        self.inner.as_graph()
    }

    fn degree_oracle(&self) -> Option<DegreeOracle> {
        self.inner.degree_oracle()
    }

    fn is_all_but_self(&self) -> bool {
        self.inner.is_all_but_self()
    }

    fn pair_hash_spec(&self) -> Option<PairHashSpec> {
        self.inner.pair_hash_spec()
    }

    fn cheap_rows(&self) -> bool {
        self.inner.cheap_rows()
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    fn label(&self) -> String {
        self.inner.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Complete, ImplicitGnp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn metered_draws_match_unmetered_draws_bit_for_bit() {
        let topo = ImplicitGnp::new(257, 0.05, 0xFEED).unwrap();
        let meter = SamplerMeter::new();
        let metered = MeteredTopology::new(&topo, &meter);

        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        for v in 0..topo.n() {
            for _ in 0..4 {
                let plain = topo.sample_neighbour(v, &mut rng_a);
                let seen = metered.sample_neighbour(v, &mut rng_b);
                assert_eq!(plain, seen);
            }
        }
        // Identical RNG positions after the sweep.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        assert_eq!(meter.accepts(), 4 * topo.n() as u64);
        assert!(meter.tries() >= meter.accepts());
    }

    #[test]
    fn closed_form_topologies_meter_one_try_per_draw() {
        let topo = Complete::new(64).unwrap();
        let meter = SamplerMeter::new();
        let metered = MeteredTopology::new(&topo, &meter);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            metered.sample_neighbour(3, &mut rng);
        }
        assert_eq!(meter.tries(), 10);
        assert_eq!(meter.accepts(), 10);
        assert_eq!(meter.tries_per_draw(), Some(1.0));
    }

    #[test]
    fn rejection_sampling_reports_more_tries_than_accepts() {
        let topo = ImplicitGnp::new(513, 0.02, 0xBEEF).unwrap();
        let meter = SamplerMeter::new();
        let metered = MeteredTopology::new(&topo, &meter);
        let mut rng = StdRng::seed_from_u64(11);
        let mut out = [0usize; 8];
        metered.sample_neighbours_into(1, &mut out, &mut rng);
        assert_eq!(meter.accepts(), 8);
        // p = 0.02 needs ~50 tries per accepted draw; anything > accepts
        // proves the counting loop is live without pinning an exact value.
        assert!(meter.tries() > meter.accepts());
        let rate = meter.tries_per_draw().unwrap();
        assert!(rate > 1.0);
    }

    #[test]
    fn routing_surfaces_forward_to_the_wrapped_topology() {
        let topo = Complete::new(16).unwrap();
        let meter = SamplerMeter::new();
        let metered = MeteredTopology::new(&topo, &meter);
        assert_eq!(metered.n(), topo.n());
        assert_eq!(metered.degree(0), topo.degree(0));
        assert_eq!(metered.is_all_but_self(), topo.is_all_but_self());
        assert_eq!(metered.cheap_rows(), topo.cheap_rows());
        assert_eq!(metered.label(), topo.label());
        assert_eq!(metered.memory_bytes(), topo.memory_bytes());
        assert!(metered.as_graph().is_none());
        assert!(metered.has_edge(0, 1));
        assert!(!metered.has_edge(2, 2));
    }
}
