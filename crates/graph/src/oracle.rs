//! Degree oracles: cheap answers to degree-rank and quantile questions.
//!
//! Degree-ranked initial conditions (the adversarial regime probed by the
//! Best-of-Two/Three SBM literature) need to know *which vertices carry the
//! highest degrees*.  On a materialised graph that is one `Θ(n log n)` sort;
//! on an implicit topology the naive route reads every degree through
//! [`crate::Topology::degree`] — `Θ(n)` per call on the hash-defined
//! families, `Θ(n²)` for the full ranking.  The oracle replaces that scan:
//!
//! * **closed-form families** (`Complete`, `CompleteBipartite`,
//!   `CompleteMultipartite`) know their degree multiset exactly from the
//!   parameters — [`DegreeOracle::Exact`] lists the degree classes as
//!   contiguous id ranges, so every rank/quantile query is
//!   `O(#classes)` ⊆ `O(log n)`-ish work and *exact*;
//! * **hash-defined families** (`ImplicitGnp`, `ImplicitSbm`) have i.i.d.
//!   Binomial-sum degrees concentrated around their mean —
//!   [`DegreeOracle::Window`] is a Bernstein concentration window
//!   `[lo, hi]` containing **every** vertex's degree simultaneously except
//!   with probability at most
//!   [`DEGREE_ORACLE_FAILURE_PROBABILITY`] (union bound over the `n`
//!   vertices).  At the oracle's resolution the vertices are exchangeable:
//!   no ranking distinguishable from any other can be certified, so rank
//!   queries return canonical choices from opposite ends of the id space
//!   (prefix for highest, suffix for lowest).
//!
//! The oracle is surfaced through [`crate::Topology::degree_oracle`]; the
//! dynamics layer uses it to place degree-ranked initial conditions on
//! implicit graphs without ever scanning a degree sequence.

use std::ops::Range;

use crate::csr::VertexId;

/// Probability budget for a [`DegreeOracle::Window`]: the chance that *any*
/// vertex's realised degree falls outside the reported window is at most
/// this (union bound over all `n` vertices, Bernstein tail per vertex).
///
/// `10⁻⁶` is far below anything Monte-Carlo replication can resolve, while
/// keeping the window width `O(√(d̄ · ln n))` — a vanishing fraction of the
/// mean degree in the dense regime the implicit families target.
pub const DEGREE_ORACLE_FAILURE_PROBABILITY: f64 = 1e-6;

/// One exact degree class: `vertices` is a contiguous id range whose members
/// all have exactly `degree` neighbours.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeClass {
    /// The common degree of every vertex in the class.
    pub degree: usize,
    /// The contiguous vertex-id range forming the class.
    pub vertices: Range<VertexId>,
}

impl DegreeClass {
    /// Number of vertices in the class.
    pub fn len(&self) -> usize {
        self.vertices.end - self.vertices.start
    }

    /// `true` when the class is empty (never produced by the topologies).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// A simultaneous concentration window over an implicit topology's degree
/// sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeWindow {
    /// Number of vertices the window covers.
    pub n: usize,
    /// Expected degree (identical for every vertex of the hash-defined
    /// families, whose blocks are equal-sized by construction).
    pub mean: f64,
    /// Lower end of the window (inclusive).
    pub lo: usize,
    /// Upper end of the window (inclusive).
    pub hi: usize,
    /// Upper bound on `P[∃v: deg(v) ∉ [lo, hi]]`.
    pub failure_probability: f64,
}

/// What a topology knows about its degree sequence without reading it.
///
/// Returned by [`crate::Topology::degree_oracle`]; `None` there means the
/// topology has no oracle (materialised graphs answer degree queries in
/// `O(1)` directly and need none).
#[derive(Debug, Clone, PartialEq)]
pub enum DegreeOracle {
    /// The exact degree multiset as contiguous id-range classes, in vertex-id
    /// order (classes partition `0..n`).
    Exact(Vec<DegreeClass>),
    /// A concentration window covering every vertex's degree at once, with
    /// the documented failure probability.
    Window(DegreeWindow),
}

impl DegreeOracle {
    /// Number of vertices the oracle describes.
    pub fn n(&self) -> usize {
        match self {
            DegreeOracle::Exact(classes) => classes.iter().map(DegreeClass::len).sum(),
            DegreeOracle::Window(w) => w.n,
        }
    }

    /// `true` when every answer is exact (closed-form families).
    pub fn is_exact(&self) -> bool {
        matches!(self, DegreeOracle::Exact(_))
    }

    /// Upper bound on the probability that any oracle answer is wrong:
    /// `0` for exact oracles, the window's union-bound budget otherwise.
    pub fn failure_probability(&self) -> f64 {
        match self {
            DegreeOracle::Exact(_) => 0.0,
            DegreeOracle::Window(w) => w.failure_probability,
        }
    }

    /// Bounds `[lo, hi]` on the degree of vertex `v` — tight for exact
    /// oracles (`O(#classes)`, the classes are in id order), the window for
    /// hash-defined families (`O(1)`).
    pub fn degree_bounds(&self, v: VertexId) -> (usize, usize) {
        match self {
            DegreeOracle::Exact(classes) => {
                let i = classes.partition_point(|c| c.vertices.end <= v);
                let d = classes[i].degree;
                (d, d)
            }
            DegreeOracle::Window(w) => (w.lo, w.hi),
        }
    }

    /// Bounds on the `q`-quantile (`q ∈ [0, 1]`) of the degree sequence:
    /// the degree of the `⌊q·(n−1)⌋`-th smallest-degree vertex.  Exact
    /// oracles walk their classes (`O(#classes)`); windows answer in `O(1)`.
    pub fn quantile(&self, q: f64) -> (usize, usize) {
        debug_assert!((0.0..=1.0).contains(&q));
        match self {
            DegreeOracle::Exact(classes) => {
                let n = self.n();
                let k = ((q * (n.saturating_sub(1)) as f64).floor() as usize).min(n - 1);
                let mut by_degree: Vec<&DegreeClass> = classes.iter().collect();
                by_degree.sort_by_key(|c| c.degree);
                let mut seen = 0usize;
                for class in by_degree {
                    seen += class.len();
                    if k < seen {
                        return (class.degree, class.degree);
                    }
                }
                unreachable!("quantile index within the class partition");
            }
            DegreeOracle::Window(w) => (w.lo, w.hi),
        }
    }

    /// The vertex ids occupying degree ranks `0..count` — descending degree
    /// order when `highest`, ascending otherwise — as disjoint id ranges.
    ///
    /// Exact oracles order classes by degree (ties in id order, matching a
    /// stable sort of the materialised degree sequence) and split the last
    /// class as needed.  Window oracles certify that all `n` degrees share
    /// one window, so *every* ranking is consistent with the oracle's
    /// knowledge (up to its failure probability); the canonical
    /// deterministic choices are the id prefix `0..count` for `highest` and
    /// the id suffix `n−count..n` for lowest — opposite ends, so the two
    /// ranked conditions name disjoint placements (for `count ≤ n/2`) just
    /// as they do on a materialised graph, and on the block-numbered SBM
    /// the prefix aligns with whole communities, the adversarial regime the
    /// degree-ranked conditions exist to probe.  Callers comparing against
    /// *realised* degree ranks must materialise the spec instead.
    pub fn ranked_vertices(&self, count: usize, highest: bool) -> Vec<Range<VertexId>> {
        let n = self.n();
        let count = count.min(n);
        if count == 0 {
            return Vec::new();
        }
        match self {
            DegreeOracle::Exact(classes) => {
                let mut by_degree: Vec<&DegreeClass> = classes.iter().collect();
                // Stable by construction: ties keep id order, exactly like a
                // stable sort of per-vertex degrees on a materialised graph.
                if highest {
                    by_degree.sort_by_key(|c| std::cmp::Reverse(c.degree));
                } else {
                    by_degree.sort_by_key(|c| c.degree);
                }
                let mut out = Vec::new();
                let mut remaining = count;
                for class in by_degree {
                    let take = remaining.min(class.len());
                    out.push(class.vertices.start..class.vertices.start + take);
                    remaining -= take;
                    if remaining == 0 {
                        break;
                    }
                }
                out
            }
            // One canonical range (not a materialised id list): prefix for
            // highest, suffix for lowest, so the two conditions stay
            // distinct placements under an exchangeable-degree oracle.
            #[allow(clippy::single_range_in_vec_init)]
            DegreeOracle::Window(_) => {
                if highest {
                    vec![0..count]
                } else {
                    vec![n - count..n]
                }
            }
        }
    }
}

/// Builds the simultaneous Bernstein window for `n` i.i.d.-ish degrees with
/// the given per-vertex `mean` and `variance` bound.
///
/// Per vertex, Bernstein's inequality gives
/// `P[|deg − μ| ≥ t] ≤ 2·exp(−t² / (2(σ² + t/3)))`; taking
/// `t = √(2σ²L) + L` with `L = ln(2n / failure_probability)` makes the right
/// side at most `failure_probability / n`, so the union bound over all `n`
/// vertices keeps the *simultaneous* failure probability at the stated
/// budget.  (`t = √(2σ²L) + L` dominates the exact inversion
/// `√(2σ²L) + 2L/3`, trading a slightly wider window for a simpler form.)
pub(crate) fn concentration_window(
    n: usize,
    mean: f64,
    variance: f64,
    failure_probability: f64,
) -> DegreeWindow {
    debug_assert!(n >= 2);
    debug_assert!(variance >= 0.0 && failure_probability > 0.0);
    let l = (2.0 * n as f64 / failure_probability).ln().max(1.0);
    let t = (2.0 * variance * l).sqrt() + l;
    DegreeWindow {
        n,
        mean,
        lo: (mean - t).floor().max(0.0) as usize,
        hi: (((mean + t).ceil()) as usize).min(n - 1),
        failure_probability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class_oracle() -> DegreeOracle {
        // K_{3,7}: ids 0..3 have degree 7, ids 3..10 degree 3.
        DegreeOracle::Exact(vec![
            DegreeClass {
                degree: 7,
                vertices: 0..3,
            },
            DegreeClass {
                degree: 3,
                vertices: 3..10,
            },
        ])
    }

    #[test]
    fn exact_oracle_reports_basics() {
        let oracle = two_class_oracle();
        assert_eq!(oracle.n(), 10);
        assert!(oracle.is_exact());
        assert_eq!(oracle.failure_probability(), 0.0);
        assert_eq!(oracle.degree_bounds(0), (7, 7));
        assert_eq!(oracle.degree_bounds(2), (7, 7));
        assert_eq!(oracle.degree_bounds(3), (3, 3));
        assert_eq!(oracle.degree_bounds(9), (3, 3));
    }

    #[test]
    fn exact_quantiles_walk_the_sorted_multiset() {
        let oracle = two_class_oracle();
        // Ascending degree multiset: seven 3s then three 7s.  Index ⌊q·9⌋:
        // q=0 → idx 0 (3), q=0.5 → idx 4 (3), q=0.78 → idx 7 (the first 7),
        // q=1 → idx 9 (7).
        assert_eq!(oracle.quantile(0.0), (3, 3));
        assert_eq!(oracle.quantile(0.5), (3, 3));
        assert_eq!(oracle.quantile(0.78), (7, 7));
        assert_eq!(oracle.quantile(1.0), (7, 7));
    }

    #[test]
    fn exact_ranking_splits_classes_and_keeps_id_order_on_ties() {
        let oracle = two_class_oracle();
        assert_eq!(oracle.ranked_vertices(2, true), vec![0..2]);
        assert_eq!(oracle.ranked_vertices(5, true), vec![0..3, 3..5]);
        assert_eq!(oracle.ranked_vertices(4, false), vec![3..7]);
        assert_eq!(oracle.ranked_vertices(0, true), Vec::<Range<usize>>::new());
        // Counts past n are clamped.
        let all: usize = oracle
            .ranked_vertices(99, true)
            .iter()
            .map(|r| r.len())
            .sum();
        assert_eq!(all, 10);
    }

    #[test]
    fn window_oracle_answers_with_its_bounds() {
        let w = concentration_window(1_000, 500.0, 250.0, 1e-6);
        assert!(w.lo < 500 && w.hi > 500);
        assert!(w.hi <= 999);
        let oracle = DegreeOracle::Window(w.clone());
        assert_eq!(oracle.n(), 1_000);
        assert!(!oracle.is_exact());
        assert_eq!(oracle.failure_probability(), 1e-6);
        assert_eq!(oracle.degree_bounds(7), (w.lo, w.hi));
        assert_eq!(oracle.quantile(0.5), (w.lo, w.hi));
        // Opposite canonical ends: highest takes the prefix, lowest the
        // suffix, so the two ranked placements stay disjoint.
        assert_eq!(oracle.ranked_vertices(10, true), vec![0..10]);
        assert_eq!(oracle.ranked_vertices(10, false), vec![990..1000]);
    }

    #[test]
    fn window_width_grows_sublinearly_with_the_mean() {
        // Θ(√(d̄·ln n)) width: a vanishing fraction of the mean at scale.
        let w = concentration_window(1_000_000, 500_000.0, 250_000.0, 1e-6);
        let width = (w.hi - w.lo) as f64;
        assert!(
            width < 0.05 * w.mean,
            "window width {width} vs mean {}",
            w.mean
        );
        assert!(w.lo as f64 <= w.mean && w.mean <= w.hi as f64);
    }
}
