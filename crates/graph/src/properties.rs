//! Miscellaneous structural properties used to characterise experiment inputs.

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// Guard shared by the whole-graph scans below: on the dense graphs this
/// crate targets they cost `Θ(n²)` (or worse), so huge inputs get a typed
/// error instead of an open-ended grind.
fn check_dense_analysis_size(graph: &CsrGraph, operation: &'static str) -> Result<()> {
    let n = graph.num_vertices();
    if n > crate::DENSE_ANALYSIS_VERTEX_LIMIT {
        return Err(GraphError::TooLarge {
            n,
            limit: crate::DENSE_ANALYSIS_VERTEX_LIMIT,
            operation,
        });
    }
    Ok(())
}

/// Edge density `m / (n choose 2)`; `0.0` for graphs with fewer than two vertices.
pub fn density(graph: &CsrGraph) -> f64 {
    let n = graph.num_vertices();
    if n < 2 {
        return 0.0;
    }
    let possible = n as f64 * (n as f64 - 1.0) / 2.0;
    graph.num_edges() as f64 / possible
}

/// `true` when every vertex has the same degree.
pub fn is_regular(graph: &CsrGraph) -> bool {
    match (graph.min_degree(), graph.max_degree()) {
        (Some(a), Some(b)) => a == b,
        _ => true,
    }
}

/// Number of triangles incident to vertex `v`.
pub fn triangles_at(graph: &CsrGraph, v: usize) -> Result<usize> {
    if v >= graph.num_vertices() {
        return Err(GraphError::VertexOutOfRange {
            vertex: v,
            n: graph.num_vertices(),
        });
    }
    let row = graph.neighbours(v);
    let mut count = 0usize;
    for (i, &a) in row.iter().enumerate() {
        for &b in &row[i + 1..] {
            if graph.has_edge(a, b) {
                count += 1;
            }
        }
    }
    Ok(count)
}

/// Local clustering coefficient of `v`; `0.0` for vertices of degree < 2.
pub fn local_clustering(graph: &CsrGraph, v: usize) -> Result<f64> {
    let deg = {
        if v >= graph.num_vertices() {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: graph.num_vertices(),
            });
        }
        graph.degree(v)
    };
    if deg < 2 {
        return Ok(0.0);
    }
    let tri = triangles_at(graph, v)? as f64;
    Ok(2.0 * tri / (deg as f64 * (deg as f64 - 1.0)))
}

/// Average local clustering coefficient over all vertices.
pub fn average_clustering(graph: &CsrGraph) -> Result<f64> {
    check_dense_analysis_size(graph, "average clustering")?;
    let n = graph.num_vertices();
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let mut total = 0.0;
    for v in graph.vertices() {
        total += local_clustering(graph, v)?;
    }
    Ok(total / n as f64)
}

/// Total number of triangles in the graph.
pub fn triangle_count(graph: &CsrGraph) -> Result<usize> {
    check_dense_analysis_size(graph, "triangle counting")?;
    let mut total = 0usize;
    for v in graph.vertices() {
        // Count each triangle once: only consider neighbours greater than v.
        let row = graph.neighbours(v);
        for (i, &a) in row.iter().enumerate() {
            if a <= v {
                continue;
            }
            for &b in &row[i + 1..] {
                if graph.has_edge(a, b) {
                    total += 1;
                }
            }
        }
    }
    Ok(total)
}

/// Degeneracy (the largest `k` such that some subgraph has minimum degree `k`),
/// computed by the standard peeling order. Returns the degeneracy and the
/// peeling order.
pub fn degeneracy(graph: &CsrGraph) -> (usize, Vec<usize>) {
    let n = graph.num_vertices();
    if n == 0 {
        return (0, Vec::new());
    }
    let mut degree: Vec<usize> = graph.vertices().map(|v| graph.degree(v)).collect();
    let max_deg = *degree.iter().max().unwrap_or(&0);
    // Bucket queue keyed by current degree.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degen = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        // Find the lowest non-empty bucket at or below the search cursor.
        cursor = cursor.saturating_sub(1);
        let v = loop {
            while cursor <= max_deg && buckets[cursor].is_empty() {
                cursor += 1;
            }
            debug_assert!(cursor <= max_deg, "bucket queue exhausted early");
            let candidate = buckets[cursor].pop().unwrap();
            if !removed[candidate] && degree[candidate] == cursor {
                break candidate;
            }
            // Stale entry; skip it.
        };
        removed[v] = true;
        degen = degen.max(degree[v]);
        order.push(v);
        for &w in graph.neighbours(v) {
            if !removed[w] {
                degree[w] -= 1;
                buckets[degree[w]].push(w);
                if degree[w] < cursor {
                    cursor = degree[w];
                }
            }
        }
    }
    (degen, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;

    #[test]
    fn density_of_complete_graph_is_one() {
        let g = generators::complete(12);
        assert!((density(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_of_empty_and_tiny_graphs() {
        assert_eq!(density(&GraphBuilder::new(0).build().unwrap()), 0.0);
        assert_eq!(density(&GraphBuilder::new(1).build().unwrap()), 0.0);
        let g = GraphBuilder::new(4).build().unwrap();
        assert_eq!(density(&g), 0.0);
    }

    #[test]
    fn regularity_checks() {
        assert!(is_regular(&generators::complete(5)));
        assert!(is_regular(&generators::cycle(7).unwrap()));
        assert!(!is_regular(&generators::star(5).unwrap()));
        assert!(is_regular(&GraphBuilder::new(0).build().unwrap()));
    }

    #[test]
    fn triangle_count_of_complete_graph() {
        // K_5 has C(5,3) = 10 triangles.
        assert_eq!(triangle_count(&generators::complete(5)).unwrap(), 10);
        assert_eq!(triangle_count(&generators::cycle(6).unwrap()).unwrap(), 0);
    }

    #[test]
    fn whole_graph_scans_refuse_huge_inputs_with_a_typed_error() {
        let g = generators::cycle(crate::DENSE_ANALYSIS_VERTEX_LIMIT + 1).unwrap();
        assert!(matches!(
            triangle_count(&g),
            Err(GraphError::TooLarge { .. })
        ));
        assert!(matches!(
            average_clustering(&g),
            Err(GraphError::TooLarge { .. })
        ));
    }

    #[test]
    fn triangles_at_vertex() {
        let g = generators::complete(4);
        // Each vertex of K_4 is in C(3,2) = 3 triangles.
        assert_eq!(triangles_at(&g, 0).unwrap(), 3);
        assert!(triangles_at(&g, 9).is_err());
    }

    #[test]
    fn clustering_coefficients() {
        let g = generators::complete(6);
        assert!((local_clustering(&g, 0).unwrap() - 1.0).abs() < 1e-12);
        assert!((average_clustering(&g).unwrap() - 1.0).abs() < 1e-12);

        let path = generators::path(4).unwrap();
        assert_eq!(average_clustering(&path).unwrap(), 0.0);
        // Degree-1 endpoint yields 0 by convention.
        assert_eq!(local_clustering(&path, 0).unwrap(), 0.0);
    }

    #[test]
    fn clustering_errors() {
        let empty = GraphBuilder::new(0).build().unwrap();
        assert!(average_clustering(&empty).is_err());
        let g = generators::complete(3);
        assert!(local_clustering(&g, 5).is_err());
    }

    #[test]
    fn degeneracy_of_standard_graphs() {
        assert_eq!(degeneracy(&generators::complete(6)).0, 5);
        assert_eq!(degeneracy(&generators::cycle(10).unwrap()).0, 2);
        assert_eq!(degeneracy(&generators::path(10).unwrap()).0, 1);
        assert_eq!(degeneracy(&generators::star(10).unwrap()).0, 1);
        let (d, order) = degeneracy(&GraphBuilder::new(0).build().unwrap());
        assert_eq!(d, 0);
        assert!(order.is_empty());
    }

    #[test]
    fn degeneracy_order_covers_all_vertices() {
        let g = generators::complete(7);
        let (_, order) = degeneracy(&g);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
    }
}
