//! Neighbour sampling primitives.
//!
//! The Best-of-k dynamics sample `k` neighbours *uniformly with replacement*
//! each round for every vertex, so sampling is the single hottest operation
//! in the whole system.  [`NeighbourSampler`] is a thin, allocation-free view
//! over a [`CsrGraph`]; [`AliasTable`] supports the weighted distributions
//! used by the Chung–Lu generator and by degree-biased initialisations.

use rand::Rng;

use crate::csr::{CsrGraph, VertexId};
use crate::error::{GraphError, Result};

/// Uniform neighbour sampling over a CSR graph.
#[derive(Debug, Clone, Copy)]
pub struct NeighbourSampler<'g> {
    graph: &'g CsrGraph,
}

impl<'g> NeighbourSampler<'g> {
    /// Wraps a graph. Fails if any vertex is isolated, because a vertex with
    /// no neighbours cannot perform a Best-of-k update.
    pub fn new(graph: &'g CsrGraph) -> Result<Self> {
        for v in graph.vertices() {
            if graph.degree(v) == 0 {
                return Err(GraphError::IsolatedVertex { vertex: v });
            }
        }
        Ok(NeighbourSampler { graph })
    }

    /// Wraps a graph without the isolated-vertex check. Sampling a neighbour
    /// of an isolated vertex will panic in debug builds.
    pub fn new_unchecked(graph: &'g CsrGraph) -> Self {
        NeighbourSampler { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// Samples one uniform random neighbour of `v` (with replacement
    /// semantics across repeated calls).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, v: VertexId, rng: &mut R) -> VertexId {
        let deg = self.graph.degree(v);
        debug_assert!(deg > 0, "cannot sample a neighbour of isolated vertex {v}");
        let i = rng.gen_range(0..deg);
        self.graph.neighbour_at(v, i)
    }

    /// Samples `K` neighbours of `v` uniformly **with replacement**.
    #[inline]
    pub fn sample_with_replacement<const K: usize, R: Rng + ?Sized>(
        &self,
        v: VertexId,
        rng: &mut R,
    ) -> [VertexId; K] {
        let mut out = [0; K];
        for slot in &mut out {
            *slot = self.sample(v, rng);
        }
        out
    }

    /// Samples `k` neighbours of `v` uniformly with replacement into `out`.
    #[inline]
    pub fn sample_many<R: Rng + ?Sized>(&self, v: VertexId, out: &mut [VertexId], rng: &mut R) {
        for slot in out.iter_mut() {
            *slot = self.sample(v, rng);
        }
    }

    /// Samples `k` distinct neighbours of `v` (without replacement). Used by
    /// the "without replacement" ablation. Returns fewer than `k` ids when
    /// `deg(v) < k`.
    pub fn sample_without_replacement<R: Rng + ?Sized>(
        &self,
        v: VertexId,
        k: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.sample_without_replacement_into(v, k, &mut out, rng);
        out
    }

    /// [`NeighbourSampler::sample_without_replacement`] into a caller-owned
    /// buffer, so repeated calls allocate nothing.
    ///
    /// Uses Floyd's subset-sampling algorithm: one bounded draw per sample
    /// and a membership scan over the (small) output — no `O(deg)` index
    /// vector, unlike a materialised partial Fisher–Yates.  The membership
    /// scan relies on the CSR row holding no duplicate neighbours.
    pub fn sample_without_replacement_into<R: Rng + ?Sized>(
        &self,
        v: VertexId,
        k: usize,
        out: &mut Vec<VertexId>,
        rng: &mut R,
    ) {
        let row = self.graph.neighbours(v);
        let take = k.min(row.len());
        out.clear();
        out.reserve(take);
        for j in row.len() - take..row.len() {
            let pick = row[rng.gen_range(0..=j)];
            if out.contains(&pick) {
                out.push(row[j]);
            } else {
                out.push(pick);
            }
        }
    }
}

/// Walker's alias method for O(1) sampling from a fixed discrete distribution.
///
/// Construction is `O(n)`.  Weights must be non-negative and sum to a
/// positive value.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds an alias table from unnormalised non-negative weights.
    pub fn new(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(GraphError::InvalidParameter {
                reason: "alias table requires at least one weight".into(),
            });
        }
        let mut total = 0.0f64;
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(GraphError::InvalidParameter {
                    reason: format!("weight {i} is negative or non-finite: {w}"),
                });
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(GraphError::InvalidParameter {
                reason: "alias table weights must sum to a positive value".into(),
            });
        }

        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0usize; n];
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();

        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }

        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] -= 1.0 - scaled[s];
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
            alias[i] = i;
        }

        Ok(AliasTable { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` when the table is empty (never the case for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index according to the weight distribution.
    ///
    /// Consumes exactly one `u64` of randomness: the column index comes from
    /// the high 32 bits (fixed-point multiply onto `[0, n)`) and the
    /// bernoulli threshold from the low 32 bits, instead of the textbook two
    /// draws (`gen_range` + `gen::<f64>`).  With at most 2³² categories the
    /// two halves are independent and each uniform.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        debug_assert!(
            (self.prob.len() as u64) < (1u64 << 32),
            "alias table too large"
        );
        let draw = rng.next_u64();
        let i = (((draw >> 32) * self.prob.len() as u64) >> 32) as usize;
        let threshold = (draw as u32) as f64 * (1.0 / 4_294_967_296.0);
        if threshold < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampler_rejects_isolated_vertices() {
        let g = GraphBuilder::new(3)
            .add_edge(0, 1)
            .unwrap()
            .build()
            .unwrap();
        let err = NeighbourSampler::new(&g).unwrap_err();
        assert!(matches!(err, GraphError::IsolatedVertex { vertex: 2 }));
    }

    #[test]
    fn sample_returns_actual_neighbours() {
        let g = generators::cycle(10).unwrap();
        let s = NeighbourSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for v in g.vertices() {
            for _ in 0..20 {
                let w = s.sample(v, &mut rng);
                assert!(g.has_edge(v, w));
            }
        }
    }

    #[test]
    fn sample_is_roughly_uniform_on_star_centre() {
        // Centre of a star has n-1 neighbours; check empirical frequencies.
        let g = generators::star(101).unwrap();
        let s = NeighbourSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 100_000;
        let mut counts = vec![0usize; 101];
        for _ in 0..trials {
            counts[s.sample(0, &mut rng)] += 1;
        }
        assert_eq!(counts[0], 0, "centre must never sample itself");
        let expected = trials as f64 / 100.0;
        for &c in &counts[1..] {
            assert!(
                (c as f64 - expected).abs() < expected * 0.25,
                "count {c} vs {expected}"
            );
        }
    }

    #[test]
    fn sample_with_replacement_const_generic() {
        let g = generators::complete(5);
        let s = NeighbourSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let picks: [usize; 3] = s.sample_with_replacement(2, &mut rng);
        for w in picks {
            assert!(g.has_edge(2, w));
        }
    }

    #[test]
    fn sample_many_fills_buffer() {
        let g = generators::complete(6);
        let s = NeighbourSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0usize; 7];
        s.sample_many(3, &mut buf, &mut rng);
        for &w in &buf {
            assert!(g.has_edge(3, w));
        }
    }

    #[test]
    fn sample_without_replacement_gives_distinct_vertices() {
        let g = generators::complete(10);
        let s = NeighbourSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let picks = s.sample_without_replacement(4, 5, &mut rng);
        assert_eq!(picks.len(), 5);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "samples must be distinct");
        for w in picks {
            assert!(g.has_edge(4, w));
        }
    }

    #[test]
    fn sample_without_replacement_caps_at_degree() {
        let g = generators::cycle(5).unwrap();
        let s = NeighbourSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let picks = s.sample_without_replacement(0, 10, &mut rng);
        assert_eq!(picks.len(), 2);
    }

    #[test]
    fn alias_table_rejects_bad_weights() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[1.0, -0.5]).is_err());
        assert!(AliasTable::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn alias_table_single_category() {
        let t = AliasTable::new(&[3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn alias_table_matches_weights_empirically() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..trials {
            counts[t.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = trials as f64 * w / total;
            let got = counts[i] as f64;
            assert!(
                (got - expected).abs() < expected * 0.05,
                "category {i}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn sample_without_replacement_into_reuses_the_buffer() {
        let g = generators::complete(12);
        let s = NeighbourSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let mut buf = Vec::new();
        for _ in 0..50 {
            s.sample_without_replacement_into(3, 4, &mut buf, &mut rng);
            assert_eq!(buf.len(), 4);
            let mut sorted = buf.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "samples must be distinct");
            for &w in &buf {
                assert!(g.has_edge(3, w));
            }
        }
    }

    #[test]
    fn sample_without_replacement_is_uniform_over_neighbours() {
        // Floyd's algorithm must give every neighbour the same marginal
        // inclusion probability k/deg.
        let g = generators::complete(21);
        let s = NeighbourSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let trials = 40_000;
        let k = 5;
        let mut counts = [0usize; 21];
        let mut buf = Vec::new();
        for _ in 0..trials {
            s.sample_without_replacement_into(0, k, &mut buf, &mut rng);
            for &w in &buf {
                counts[w] += 1;
            }
        }
        assert_eq!(counts[0], 0, "vertex 0 must never sample itself");
        let expected = trials as f64 * k as f64 / 20.0;
        for &c in &counts[1..] {
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "count {c} vs {expected}"
            );
        }
    }

    /// An [`RngCore`] wrapper that counts how much randomness is consumed.
    struct CountingRng<R> {
        inner: R,
        u32_draws: usize,
        u64_draws: usize,
    }

    impl<R: rand::RngCore> rand::RngCore for CountingRng<R> {
        fn next_u32(&mut self) -> u32 {
            self.u32_draws += 1;
            self.inner.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.u64_draws += 1;
            self.inner.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.inner.fill_bytes(dest)
        }
    }

    #[test]
    fn alias_table_consumes_one_u64_per_sample() {
        let t = AliasTable::new(&[1.0, 2.0, 3.0]).unwrap();
        let mut rng = CountingRng {
            inner: StdRng::seed_from_u64(17),
            u32_draws: 0,
            u64_draws: 0,
        };
        let samples = 1000;
        for _ in 0..samples {
            t.sample(&mut rng);
        }
        assert_eq!(rng.u64_draws, samples);
        assert_eq!(rng.u32_draws, 0);
    }

    #[test]
    fn alias_table_single_draw_split_matches_weights_empirically() {
        // Sharper empirical check dedicated to the high/low bit split: a
        // skewed distribution where index/threshold correlation would show.
        let weights = [0.05, 0.9, 0.05];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let trials = 300_000;
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = trials as f64 * w;
            let got = counts[i] as f64;
            assert!(
                (got - expected).abs() < expected * 0.05,
                "category {i}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn alias_table_zero_weight_category_is_never_drawn() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let i = t.sample(&mut rng);
            assert!(i == 1 || i == 3);
        }
    }
}
