//! Serialisable topology descriptions — the configuration layer's view of a
//! graph, whether materialised or implicit.
//!
//! [`TopologySpec`] is to graphs what `ProtocolSpec` is to protocols: a
//! serde-friendly value that names a family instance and can be turned into
//! a live object with [`TopologySpec::build`].  It unifies the two worlds
//! that previously had separate entry points:
//!
//! * the *implicit* families of [`crate::topology`] (`Complete`,
//!   `CompleteBipartite`, `CompleteMultipartite`, `ImplicitGnp`,
//!   `ImplicitSbm`), which never allocate adjacency and scale to `n = 10⁶`
//!   and beyond;
//! * every materialised generator of [`crate::generators`], wrapped as
//!   [`TopologySpec::Materialised`] — CSR materialisation becomes an
//!   internal detail of `build`, not a separate code path in every caller.
//!
//! `Topology` is deliberately not object-safe (neighbour sampling is generic
//! over the RNG so the dynamics kernels can monomorphize it away), so the
//! `build` mirror of `ProtocolSpec::build` returns the closed enum
//! [`BuiltTopology`] instead of a `Box<dyn Topology>`: callers get one owned
//! value implementing [`Topology`] and the kernels keep static dispatch.
//!
//! # Seeding contract
//!
//! `build(seed)` freezes all topology randomness under `seed`:
//!
//! * hash-defined families use `seed` directly as their pairwise-hash seed,
//!   so the same `(spec, seed)` always names the same edge set;
//! * materialised generators draw from
//!   `StdRng::seed_from_u64(seed ^ GRAPH_SEED_SALT)` — the exact derivation
//!   the pre-redesign `Experiment::build_graph` used, so seeded experiment
//!   graphs are bit-identical across the API migration.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::csr::{CsrGraph, VertexId};
use crate::degree::DegreeStats;
use crate::error::Result;
use crate::generators::GraphSpec;
use crate::topology::{
    Complete, CompleteBipartite, CompleteMultipartite, CsrTopology, ImplicitGnp, ImplicitSbm,
    Topology,
};

/// Salt XOR-ed into the seed handed to materialised generators.
///
/// This is the constant the pre-redesign `bo3_core::Experiment::build_graph`
/// used; keeping it here (and using it in [`TopologySpec::build`]) is what
/// makes seeded materialised graphs — and therefore seeded Monte-Carlo
/// reports — bit-identical across the Scenario API redesign.
pub const GRAPH_SEED_SALT: u64 = 0xA5A5_5A5A_DEAD_BEEF;

/// A serialisable description of a topology instance.
///
/// The first five variants are adjacency-free: a few machine words that
/// scale to millions of vertices.  [`TopologySpec::Materialised`] wraps any
/// [`GraphSpec`] generator behind the same interface, so one configuration
/// type spans every graph the repository can produce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// The complete graph `K_n`, represented implicitly (no adjacency).
    Complete {
        /// Number of vertices (`n ≥ 2`).
        n: usize,
    },
    /// The complete bipartite graph `K_{a,b}`, represented implicitly.
    CompleteBipartite {
        /// Left side size (`a ≥ 1`).
        a: usize,
        /// Right side size (`b ≥ 1`).
        b: usize,
    },
    /// The complete multipartite graph over the given block sizes,
    /// represented implicitly.
    CompleteMultipartite {
        /// Non-empty block sizes (at least two blocks).
        blocks: Vec<usize>,
    },
    /// Implicit Erdős–Rényi `G(n, p)`: edges frozen by a pairwise hash of
    /// the build seed, never stored.
    ImplicitGnp {
        /// Number of vertices (`n ≥ 2`).
        n: usize,
        /// Edge probability in `(0, 1]` (the dense regime).
        p: f64,
    },
    /// Implicit planted-partition SBM over the same hash scheme.
    ImplicitSbm {
        /// Number of vertices (`n ≥ 2`).
        n: usize,
        /// Number of equal blocks (must divide `n`).
        blocks: usize,
        /// Within-block edge probability.
        p_in: f64,
        /// Across-block edge probability.
        p_out: f64,
    },
    /// Any materialised generator family, built as a [`CsrGraph`].
    Materialised(GraphSpec),
}

impl From<GraphSpec> for TopologySpec {
    fn from(spec: GraphSpec) -> Self {
        TopologySpec::Materialised(spec)
    }
}

impl TopologySpec {
    /// Instantiates the described topology, freezing all randomness under
    /// `seed` (see the module docs for the exact derivation).
    pub fn build(&self, seed: u64) -> Result<BuiltTopology> {
        Ok(match self {
            TopologySpec::Complete { n } => BuiltTopology::Complete(Complete::new(*n)?),
            TopologySpec::CompleteBipartite { a, b } => {
                BuiltTopology::CompleteBipartite(CompleteBipartite::new(*a, *b)?)
            }
            TopologySpec::CompleteMultipartite { blocks } => {
                BuiltTopology::CompleteMultipartite(CompleteMultipartite::new(blocks)?)
            }
            TopologySpec::ImplicitGnp { n, p } => {
                BuiltTopology::ImplicitGnp(ImplicitGnp::new(*n, *p, seed)?)
            }
            TopologySpec::ImplicitSbm {
                n,
                blocks,
                p_in,
                p_out,
            } => BuiltTopology::ImplicitSbm(ImplicitSbm::new(*n, *blocks, *p_in, *p_out, seed)?),
            TopologySpec::Materialised(graph_spec) => {
                let mut rng = StdRng::seed_from_u64(seed ^ GRAPH_SEED_SALT);
                BuiltTopology::Materialised(graph_spec.generate(&mut rng)?)
            }
        })
    }

    /// Number of vertices the built topology will have (without building it).
    pub fn num_vertices(&self) -> usize {
        match self {
            TopologySpec::Complete { n }
            | TopologySpec::ImplicitGnp { n, .. }
            | TopologySpec::ImplicitSbm { n, .. } => *n,
            TopologySpec::CompleteBipartite { a, b } => a + b,
            TopologySpec::CompleteMultipartite { blocks } => blocks.iter().sum(),
            TopologySpec::Materialised(spec) => spec.num_vertices(),
        }
    }

    /// `true` for the adjacency-free families (everything except
    /// [`TopologySpec::Materialised`]).
    pub fn is_implicit(&self) -> bool {
        !matches!(self, TopologySpec::Materialised(_))
    }

    /// `true` for the hash-defined families ([`TopologySpec::ImplicitGnp`],
    /// [`TopologySpec::ImplicitSbm`]), whose per-vertex degrees exist only
    /// as a `Θ(n)` count over the frozen edge set — the families for which
    /// dense whole-graph analyses degrade to `Skipped` rather than run.
    pub fn is_hash_defined(&self) -> bool {
        matches!(
            self,
            TopologySpec::ImplicitGnp { .. } | TopologySpec::ImplicitSbm { .. }
        )
    }

    /// A short human-readable label for reports and bench ids, matching the
    /// built topology's label for the implicit families and the generator's
    /// label for materialised ones.
    pub fn label(&self) -> String {
        match self {
            TopologySpec::Complete { n } => format!("implicit_complete(n={n})"),
            TopologySpec::CompleteBipartite { a, b } => format!("implicit_bipartite({a},{b})"),
            TopologySpec::CompleteMultipartite { blocks } => format!(
                "implicit_multipartite(blocks={},n={})",
                blocks.len(),
                self.num_vertices()
            ),
            TopologySpec::ImplicitGnp { n, p } => format!("implicit_gnp(n={n},p={p})"),
            TopologySpec::ImplicitSbm {
                n,
                blocks,
                p_in,
                p_out,
            } => format!("implicit_sbm(n={n},blocks={blocks},p_in={p_in},p_out={p_out})"),
            TopologySpec::Materialised(spec) => spec.label(),
        }
    }

    /// The mean degree the built topology will have, without building it:
    /// exact for the closed-form families, the expectation for the
    /// hash-defined ones.  `None` for materialised specs, whose degree
    /// sequence is realised only by the generator.
    ///
    /// This is the single source of truth the scale experiment's
    /// CSR-equivalent memory column and the dense-regime validation share.
    pub fn expected_degree(&self) -> Option<f64> {
        match self {
            TopologySpec::Complete { n } => Some((n.saturating_sub(1)) as f64),
            TopologySpec::CompleteBipartite { a, b } => {
                Some(2.0 * (*a as f64) * (*b as f64) / (a + b) as f64)
            }
            TopologySpec::CompleteMultipartite { blocks } => {
                let n: usize = blocks.iter().sum();
                let sq_sum: usize = blocks.iter().map(|&s| s * s).sum();
                Some((n * n - sq_sum) as f64 / n as f64)
            }
            TopologySpec::ImplicitGnp { n, p } => Some(p * (n.saturating_sub(1)) as f64),
            TopologySpec::ImplicitSbm {
                n,
                blocks,
                p_in,
                p_out,
            } => {
                let block_size = n / blocks.max(&1);
                Some((block_size.saturating_sub(1)) as f64 * p_in + (n - block_size) as f64 * p_out)
            }
            TopologySpec::Materialised(_) => None,
        }
    }

    /// Exact degree statistics in closed form, for the families whose degree
    /// multiset is determined by the parameters alone (`Complete`,
    /// `CompleteBipartite`, `CompleteMultipartite`).
    ///
    /// Hash-defined and materialised families return `None`: their degree
    /// sequences are realised only at build time (and for hash-defined
    /// families even then cost `Θ(n)` per vertex to read).
    pub fn closed_form_degree_stats(&self) -> Option<DegreeStats> {
        match self {
            TopologySpec::Complete { n } if *n >= 2 => {
                Some(stats_from_degree_groups(&[(*n - 1, *n)], *n * (*n - 1) / 2))
            }
            TopologySpec::CompleteBipartite { a, b } if *a >= 1 && *b >= 1 => {
                // `a` vertices of degree `b` and `b` vertices of degree `a`
                // (one merged group when the sides are balanced).
                let mut groups = if a == b {
                    vec![(*a, a + b)]
                } else {
                    vec![(*b, *a), (*a, *b)]
                };
                groups.sort_unstable();
                Some(stats_from_degree_groups(&groups, a * b))
            }
            TopologySpec::CompleteMultipartite { blocks }
                if blocks.len() >= 2 && blocks.iter().all(|&s| s > 0) =>
            {
                let n: usize = blocks.iter().sum();
                let sq_sum: usize = blocks.iter().map(|&s| s * s).sum();
                let mut groups: Vec<(usize, usize)> = blocks.iter().map(|&s| (n - s, s)).collect();
                groups.sort_unstable();
                // Merge equal-sized blocks so counts are per distinct degree.
                let mut merged: Vec<(usize, usize)> = Vec::with_capacity(groups.len());
                for (deg, count) in groups {
                    match merged.last_mut() {
                        Some((d, c)) if *d == deg => *c += count,
                        _ => merged.push((deg, count)),
                    }
                }
                Some(stats_from_degree_groups(&merged, (n * n - sq_sum) / 2))
            }
            _ => None,
        }
    }
}

/// Exact [`DegreeStats`] from a sorted multiset of `(degree, count)` groups.
fn stats_from_degree_groups(groups: &[(usize, usize)], m: usize) -> DegreeStats {
    debug_assert!(groups.windows(2).all(|w| w[0].0 < w[1].0));
    let n: usize = groups.iter().map(|&(_, c)| c).sum();
    debug_assert!(n > 0);
    let min = groups.first().map(|&(d, _)| d).unwrap_or(0);
    let max = groups.last().map(|&(d, _)| d).unwrap_or(0);
    let sum: usize = groups.iter().map(|&(d, c)| d * c).sum();
    let mean = sum as f64 / n as f64;
    // The k-th (0-indexed) smallest degree, by walking cumulative counts.
    let kth = |k: usize| -> usize {
        let mut seen = 0usize;
        for &(d, c) in groups {
            seen += c;
            if k < seen {
                return d;
            }
        }
        max
    };
    let median = if n % 2 == 1 {
        kth(n / 2) as f64
    } else {
        (kth(n / 2 - 1) + kth(n / 2)) as f64 / 2.0
    };
    let variance = groups
        .iter()
        .map(|&(d, c)| c as f64 * (d as f64 - mean).powi(2))
        .sum::<f64>()
        / n as f64;
    DegreeStats {
        n,
        m,
        min,
        max,
        mean,
        median,
        variance,
    }
}

/// A built topology: one owned value spanning every [`TopologySpec`]
/// variant, implementing [`Topology`] by delegating to the concrete family.
///
/// This is the closed-enum mirror of `ProtocolSpec::build`'s
/// `Box<dyn Protocol>` — an enum rather than a box because [`Topology`] is
/// not object-safe (see the module docs).  The per-call `match` is a single
/// predictable branch; hot loops that want full monomorphization can still
/// match once and hand the concrete variant to the engine.
#[derive(Debug, Clone)]
pub enum BuiltTopology {
    /// Implicit `K_n`.
    Complete(Complete),
    /// Implicit `K_{a,b}`.
    CompleteBipartite(CompleteBipartite),
    /// Implicit complete multipartite graph.
    CompleteMultipartite(CompleteMultipartite),
    /// Implicit (frozen-hash) `G(n, p)`.
    ImplicitGnp(ImplicitGnp),
    /// Implicit (frozen-hash) planted-partition SBM.
    ImplicitSbm(ImplicitSbm),
    /// A materialised graph, owned.
    Materialised(CsrGraph),
}

impl BuiltTopology {
    /// The materialised graph, when this topology is CSR-backed.
    ///
    /// `Some` exactly for [`BuiltTopology::Materialised`]; the engine uses
    /// this to serve the graph-only features (custom `dyn` protocols,
    /// realised degree sequences) while implicit topologies stay
    /// adjacency-free.  This is the same answer as the
    /// [`Topology::as_graph`] trait hook, kept inherent so callers without
    /// the trait in scope can still reach it.
    pub fn as_graph(&self) -> Option<&CsrGraph> {
        match self {
            BuiltTopology::Materialised(g) => Some(g),
            _ => None,
        }
    }
}

macro_rules! delegate_topology {
    ($self:ident, $topo:ident => $body:expr) => {
        match $self {
            BuiltTopology::Complete($topo) => $body,
            BuiltTopology::CompleteBipartite($topo) => $body,
            BuiltTopology::CompleteMultipartite($topo) => $body,
            BuiltTopology::ImplicitGnp($topo) => $body,
            BuiltTopology::ImplicitSbm($topo) => $body,
            BuiltTopology::Materialised(g) => {
                let $topo = CsrTopology::new(g);
                $body
            }
        }
    };
}

impl Topology for BuiltTopology {
    fn n(&self) -> usize {
        delegate_topology!(self, t => t.n())
    }

    fn degree(&self, v: VertexId) -> usize {
        delegate_topology!(self, t => t.degree(v))
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        delegate_topology!(self, t => t.has_edge(u, v))
    }

    #[inline(always)]
    fn sample_neighbour<R: RngCore + ?Sized>(&self, v: VertexId, rng: &mut R) -> VertexId {
        delegate_topology!(self, t => t.sample_neighbour(v, rng))
    }

    #[inline(always)]
    fn sample_neighbour_tries<R: RngCore + ?Sized>(
        &self,
        v: VertexId,
        rng: &mut R,
    ) -> (VertexId, u64) {
        delegate_topology!(self, t => t.sample_neighbour_tries(v, rng))
    }

    #[inline]
    fn sample_neighbours_into<R: RngCore + ?Sized>(
        &self,
        v: VertexId,
        out: &mut [VertexId],
        rng: &mut R,
    ) {
        delegate_topology!(self, t => t.sample_neighbours_into(v, out, rng))
    }

    fn for_each_neighbour<F: FnMut(VertexId)>(&self, v: VertexId, f: F) {
        delegate_topology!(self, t => t.for_each_neighbour(v, f))
    }

    fn as_csr(&self) -> Option<(&[usize], &[VertexId])> {
        match self {
            BuiltTopology::Materialised(g) => Some(g.as_csr()),
            _ => None,
        }
    }

    fn as_graph(&self) -> Option<&CsrGraph> {
        BuiltTopology::as_graph(self)
    }

    fn degree_oracle(&self) -> Option<crate::oracle::DegreeOracle> {
        delegate_topology!(self, t => t.degree_oracle())
    }

    fn is_all_but_self(&self) -> bool {
        delegate_topology!(self, t => t.is_all_but_self())
    }

    fn pair_hash_spec(&self) -> Option<crate::lane::PairHashSpec> {
        delegate_topology!(self, t => t.pair_hash_spec())
    }

    fn cheap_rows(&self) -> bool {
        delegate_topology!(self, t => t.cheap_rows())
    }

    fn memory_bytes(&self) -> usize {
        delegate_topology!(self, t => t.memory_bytes())
    }

    fn label(&self) -> String {
        delegate_topology!(self, t => t.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::topology::materialize;
    use rand::Rng;

    fn all_variants() -> Vec<TopologySpec> {
        vec![
            TopologySpec::Complete { n: 12 },
            TopologySpec::CompleteBipartite { a: 5, b: 7 },
            TopologySpec::CompleteMultipartite {
                blocks: vec![3, 4, 5],
            },
            TopologySpec::ImplicitGnp { n: 40, p: 0.5 },
            TopologySpec::ImplicitSbm {
                n: 40,
                blocks: 2,
                p_in: 0.7,
                p_out: 0.2,
            },
            TopologySpec::Materialised(GraphSpec::ErdosRenyiGnp { n: 40, p: 0.4 }),
        ]
    }

    #[test]
    fn every_variant_builds_and_reports_consistent_n() {
        for spec in all_variants() {
            let built = spec.build(7).unwrap();
            assert_eq!(built.n(), spec.num_vertices(), "{}", spec.label());
            assert!(!spec.label().is_empty());
            assert!(built.memory_bytes() > 0);
        }
    }

    #[test]
    fn build_is_deterministic_in_the_seed() {
        for spec in all_variants() {
            let a = spec.build(21).unwrap();
            let b = spec.build(21).unwrap();
            // Frozen edge sets: identical adjacency on both builds.
            for u in 0..a.n() {
                for v in 0..a.n() {
                    assert_eq!(a.has_edge(u, v), b.has_edge(u, v), "{}", spec.label());
                }
            }
        }
    }

    #[test]
    fn materialised_build_matches_the_pre_redesign_seed_derivation() {
        // The exact StdRng(seed ^ GRAPH_SEED_SALT) stream the old
        // Experiment::build_graph used — the bit-identity anchor.
        let spec = GraphSpec::ErdosRenyiGnp { n: 200, p: 0.2 };
        let seed = 7u64;
        let mut rng = StdRng::seed_from_u64(seed ^ GRAPH_SEED_SALT);
        let expected = spec.generate(&mut rng).unwrap();
        let built = TopologySpec::Materialised(spec).build(seed).unwrap();
        assert_eq!(built.as_graph().unwrap(), &expected);
    }

    #[test]
    fn built_complete_matches_the_implicit_topology() {
        let built = TopologySpec::Complete { n: 9 }.build(0).unwrap();
        assert!(built.is_all_but_self());
        assert_eq!(
            materialize(&built).unwrap(),
            generators::complete(9),
            "built K_n must be K_n"
        );
    }

    #[test]
    fn built_topology_sampling_matches_the_concrete_family() {
        let spec = TopologySpec::ImplicitGnp { n: 50, p: 0.5 };
        let built = spec.build(3).unwrap();
        let concrete = ImplicitGnp::new(50, 0.5, 3).unwrap();
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for v in 0..50 {
            assert_eq!(
                built.sample_neighbour(v, &mut a),
                concrete.sample_neighbour(v, &mut b)
            );
        }
    }

    #[test]
    fn materialised_sampling_stays_on_the_gen_range_stream() {
        let built = TopologySpec::Materialised(GraphSpec::Complete { n: 23 })
            .build(14)
            .unwrap();
        let g = built.as_graph().unwrap().clone();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for v in 0..23 {
            let via_built = built.sample_neighbour(v, &mut a);
            let via_gen_range = g.neighbour_at(v, b.gen_range(0..g.degree(v)));
            assert_eq!(via_built, via_gen_range);
        }
    }

    #[test]
    fn invalid_parameters_surface_as_typed_errors() {
        assert!(TopologySpec::Complete { n: 1 }.build(0).is_err());
        assert!(TopologySpec::CompleteBipartite { a: 0, b: 3 }
            .build(0)
            .is_err());
        assert!(TopologySpec::CompleteMultipartite { blocks: vec![4] }
            .build(0)
            .is_err());
        assert!(TopologySpec::ImplicitGnp { n: 10, p: 0.0 }
            .build(0)
            .is_err());
        assert!(TopologySpec::ImplicitSbm {
            n: 10,
            blocks: 3,
            p_in: 0.5,
            p_out: 0.1
        }
        .build(0)
        .is_err());
    }

    #[test]
    fn classification_helpers() {
        assert!(TopologySpec::Complete { n: 5 }.is_implicit());
        assert!(!TopologySpec::Complete { n: 5 }.is_hash_defined());
        assert!(TopologySpec::ImplicitGnp { n: 5, p: 0.5 }.is_hash_defined());
        assert!(TopologySpec::ImplicitSbm {
            n: 6,
            blocks: 2,
            p_in: 0.5,
            p_out: 0.5
        }
        .is_hash_defined());
        let mat = TopologySpec::from(GraphSpec::Complete { n: 5 });
        assert!(!mat.is_implicit());
        assert!(!mat.is_hash_defined());
        assert_eq!(mat.label(), "complete(n=5)");
    }

    #[test]
    fn closed_form_degree_stats_match_the_materialised_truth() {
        let cases = vec![
            TopologySpec::Complete { n: 11 },
            TopologySpec::CompleteBipartite { a: 4, b: 9 },
            TopologySpec::CompleteBipartite { a: 6, b: 6 },
            TopologySpec::CompleteMultipartite {
                blocks: vec![2, 5, 5, 9],
            },
        ];
        for spec in cases {
            let exact = spec.closed_form_degree_stats().expect("closed form");
            let built = spec.build(0).unwrap();
            let graph = materialize(&built).unwrap();
            let measured = DegreeStats::of(&graph).unwrap();
            assert_eq!(exact.n, measured.n, "{}", spec.label());
            assert_eq!(exact.m, measured.m, "{}", spec.label());
            assert_eq!(exact.min, measured.min, "{}", spec.label());
            assert_eq!(exact.max, measured.max, "{}", spec.label());
            assert!(
                (exact.mean - measured.mean).abs() < 1e-9,
                "{}",
                spec.label()
            );
            assert!(
                (exact.median - measured.median).abs() < 1e-9,
                "{}",
                spec.label()
            );
            assert!(
                (exact.variance - measured.variance).abs() < 1e-9,
                "{}",
                spec.label()
            );
        }
    }

    #[test]
    fn expected_degree_matches_the_realised_mean() {
        // Exact for closed forms; within Monte-Carlo range for hash-defined.
        let cases = vec![
            TopologySpec::Complete { n: 40 },
            TopologySpec::CompleteBipartite { a: 10, b: 30 },
            TopologySpec::CompleteMultipartite {
                blocks: vec![10, 15, 25],
            },
            TopologySpec::ImplicitGnp { n: 300, p: 0.5 },
            TopologySpec::ImplicitSbm {
                n: 300,
                blocks: 3,
                p_in: 0.6,
                p_out: 0.2,
            },
        ];
        for spec in cases {
            let expected = spec.expected_degree().expect("implicit family");
            let graph = materialize(&spec.build(5).unwrap()).unwrap();
            let realised = 2.0 * graph.num_edges() as f64 / graph.num_vertices() as f64;
            let tolerance = if spec.is_hash_defined() {
                // ~5 sigma of the mean-degree fluctuation.
                5.0 * (expected / graph.num_vertices() as f64).sqrt().max(0.1)
            } else {
                1e-9
            };
            assert!(
                (expected - realised).abs() <= tolerance,
                "{}: expected {expected}, realised {realised}",
                spec.label()
            );
        }
        assert!(TopologySpec::Materialised(GraphSpec::Complete { n: 9 })
            .expected_degree()
            .is_none());
    }

    #[test]
    fn hash_defined_and_materialised_families_have_no_closed_form() {
        assert!(TopologySpec::ImplicitGnp { n: 10, p: 0.5 }
            .closed_form_degree_stats()
            .is_none());
        assert!(TopologySpec::ImplicitSbm {
            n: 10,
            blocks: 2,
            p_in: 0.5,
            p_out: 0.1
        }
        .closed_form_degree_stats()
        .is_none());
        assert!(TopologySpec::Materialised(GraphSpec::Complete { n: 10 })
            .closed_form_degree_stats()
            .is_none());
    }

    #[test]
    fn num_vertices_covers_every_materialised_family() {
        let cases = vec![
            (GraphSpec::Complete { n: 9 }, 9),
            (GraphSpec::Hypercube { dim: 4 }, 16),
            (GraphSpec::Torus2d { rows: 3, cols: 5 }, 15),
            (GraphSpec::Grid2d { rows: 2, cols: 7 }, 14),
            (
                GraphSpec::Barbell {
                    clique: 5,
                    bridge: 3,
                },
                13,
            ),
            (
                GraphSpec::CorePeriphery {
                    core: 4,
                    periphery: 10,
                    attach: 2,
                },
                14,
            ),
            (GraphSpec::CompleteBipartite { a: 3, b: 4 }, 7),
        ];
        let mut rng = StdRng::seed_from_u64(1);
        for (spec, expected) in cases {
            assert_eq!(spec.num_vertices(), expected, "{}", spec.label());
            let g = spec.generate(&mut rng).unwrap();
            assert_eq!(g.num_vertices(), expected, "{}", spec.label());
        }
    }
}
