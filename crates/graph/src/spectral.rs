//! Spectral estimates for the random-walk transition matrix.
//!
//! The expander-based analyses the paper compares against (\[4], \[5]) phrase
//! their initial-bias conditions in terms of `λ₂`, the second largest
//! absolute eigenvalue of the transition matrix `P = D⁻¹A`.  We estimate it
//! with deflated power iteration on the *lazy* walk `(I + P)/2`, which makes
//! every eigenvalue non-negative and avoids the ±λ oscillation of bipartite
//! graphs; conductance of a sweep cut gives a combinatorial cross-check via
//! Cheeger's inequality.

use rand::Rng;

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};

/// Options for power iteration.
#[derive(Debug, Clone, Copy)]
pub struct PowerIterationOptions {
    /// Maximum number of iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the Rayleigh-quotient change.
    pub tolerance: f64,
}

impl Default for PowerIterationOptions {
    fn default() -> Self {
        PowerIterationOptions {
            max_iters: 500,
            tolerance: 1e-9,
        }
    }
}

/// Multiplies the transition matrix `P = D⁻¹ A` with `x`: `(Px)(v) = mean of x over N(v)`.
fn transition_multiply(graph: &CsrGraph, x: &[f64], out: &mut [f64]) {
    for v in graph.vertices() {
        let row = graph.neighbours(v);
        if row.is_empty() {
            out[v] = 0.0;
            continue;
        }
        let mut acc = 0.0;
        for &w in row {
            acc += x[w];
        }
        out[v] = acc / row.len() as f64;
    }
}

/// Sign convention for the half-walk operators used internally.
#[derive(Clone, Copy)]
enum HalfWalk {
    /// `(I + P)/2` — its dominant non-stationary eigenvalue recovers the
    /// largest eigenvalue of `P` below 1.
    Lazy,
    /// `(I − P)/2` — its dominant eigenvalue recovers the most negative
    /// eigenvalue of `P` (e.g. −1 on bipartite graphs).
    AntiLazy,
}

/// Power iteration for the dominant eigenvalue of a half-walk operator with
/// the stationary component projected out (both operators are self-adjoint
/// and positive semi-definite under the degree inner product, so the
/// iteration converges monotonically without sign oscillation).
fn half_walk_dominant<R: Rng + ?Sized>(
    graph: &CsrGraph,
    which: HalfWalk,
    opts: PowerIterationOptions,
    rng: &mut R,
) -> f64 {
    let n = graph.num_vertices();
    let total_degree = graph.total_degree() as f64;
    let deg: Vec<f64> = graph.vertices().map(|v| graph.degree(v) as f64).collect();

    let project = |x: &mut [f64]| {
        let mean = x
            .iter()
            .zip(deg.iter())
            .map(|(&xi, &di)| xi * di)
            .sum::<f64>()
            / total_degree;
        for xi in x.iter_mut() {
            *xi -= mean;
        }
    };
    let pi_norm = |x: &[f64]| -> f64 {
        x.iter()
            .zip(deg.iter())
            .map(|(&xi, &di)| di * xi * xi)
            .sum::<f64>()
            .sqrt()
    };
    let apply = |x: &[f64], out: &mut [f64]| {
        transition_multiply(graph, x, out);
        match which {
            HalfWalk::Lazy => {
                for v in 0..n {
                    out[v] = 0.5 * (x[v] + out[v]);
                }
            }
            HalfWalk::AntiLazy => {
                for v in 0..n {
                    out[v] = 0.5 * (x[v] - out[v]);
                }
            }
        }
    };

    let mut x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
    project(&mut x);
    if pi_norm(&x) <= f64::EPSILON {
        x = (0..n)
            .map(|v| if v % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        project(&mut x);
    }
    let norm = pi_norm(&x).max(f64::MIN_POSITIVE);
    for xi in x.iter_mut() {
        *xi /= norm;
    }

    let mut qx = vec![0.0f64; n];
    let mut mu_prev = 0.0f64;
    for _ in 0..opts.max_iters {
        apply(&x, &mut qx);
        project(&mut qx);
        // Rayleigh quotient <x, Qx>_π with ||x||_π = 1.
        let mu: f64 = (0..n).map(|v| deg[v] * x[v] * qx[v]).sum();
        let norm = pi_norm(&qx);
        if norm <= f64::EPSILON {
            // No mass outside the stationary eigenspace: operator is zero there.
            return mu.max(0.0);
        }
        for q in qx.iter_mut() {
            *q /= norm;
        }
        std::mem::swap(&mut x, &mut qx);
        if (mu - mu_prev).abs() < opts.tolerance {
            return mu;
        }
        mu_prev = mu;
    }
    mu_prev
}

/// Estimates `λ₂(P)`, the second-largest-in-absolute-value eigenvalue of the
/// transition matrix, on a graph with no isolated vertices.
///
/// Runs power iteration twice, on the lazy walk `(I+P)/2` (captures the
/// largest non-principal eigenvalue of `P`) and on the anti-lazy walk
/// `(I−P)/2` (captures the most negative eigenvalue, e.g. −1 on bipartite
/// graphs), and returns the larger magnitude mapped back to `P`'s spectrum.
pub fn lambda2<R: Rng + ?Sized>(
    graph: &CsrGraph,
    opts: PowerIterationOptions,
    rng: &mut R,
) -> Result<f64> {
    let n = graph.num_vertices();
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    // Each power-iteration step touches every arc; on the dense graphs this
    // crate targets that is Θ(n²) per iteration, so refuse huge inputs
    // instead of grinding for hours (million-vertex experiments run on the
    // implicit topology layer, which has closed-form spectra anyway).
    if n > crate::DENSE_ANALYSIS_VERTEX_LIMIT {
        return Err(GraphError::TooLarge {
            n,
            limit: crate::DENSE_ANALYSIS_VERTEX_LIMIT,
            operation: "spectral estimation (lambda2)",
        });
    }
    for v in graph.vertices() {
        if graph.degree(v) == 0 {
            return Err(GraphError::IsolatedVertex { vertex: v });
        }
    }
    if n == 1 {
        return Ok(0.0);
    }
    let mu_plus = half_walk_dominant(graph, HalfWalk::Lazy, opts, rng);
    let mu_minus = half_walk_dominant(graph, HalfWalk::AntiLazy, opts, rng);
    let lambda_high = (2.0 * mu_plus - 1.0).abs();
    let lambda_low = (1.0 - 2.0 * mu_minus).abs();
    Ok(lambda_high.max(lambda_low).min(1.0))
}

/// Conductance `φ(S) = cut(S, V∖S) / min(vol(S), vol(V∖S))` of the vertex set `S`.
pub fn conductance(graph: &CsrGraph, set: &[usize]) -> Result<f64> {
    let n = graph.num_vertices();
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let mut in_set = vec![false; n];
    for &v in set {
        if v >= n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n });
        }
        in_set[v] = true;
    }
    let mut cut = 0usize;
    let mut vol_s = 0usize;
    for v in graph.vertices() {
        if !in_set[v] {
            continue;
        }
        vol_s += graph.degree(v);
        for &w in graph.neighbours(v) {
            if !in_set[w] {
                cut += 1;
            }
        }
    }
    let vol_rest = graph.total_degree() - vol_s;
    let denom = vol_s.min(vol_rest);
    if denom == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "conductance undefined: one side of the cut has zero volume".into(),
        });
    }
    Ok(cut as f64 / denom as f64)
}

/// The initial-bias threshold of Cooper et al. \[5]: red wins w.h.p. when
/// `d(R₀) − d(B₀) ≥ 4 λ₂² d(V)`. Returns that right-hand side so experiments
/// can compare the paper's condition with the expander-based one.
pub fn expander_bias_threshold(graph: &CsrGraph, lambda2: f64) -> f64 {
    4.0 * lambda2 * lambda2 * graph.total_degree() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn l2(g: &CsrGraph, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        lambda2(g, PowerIterationOptions::default(), &mut rng).unwrap()
    }

    #[test]
    fn complete_graph_has_tiny_lambda2() {
        // K_n has λ₂(P) = 1/(n-1).
        let g = generators::complete(50);
        let est = l2(&g, 1);
        assert!((est - 1.0 / 49.0).abs() < 5e-3, "estimate {est}");
    }

    #[test]
    fn cycle_has_lambda2_close_to_one() {
        // C_n has λ₂(P) = cos(2π/n) → 1.
        let g = generators::cycle(100).unwrap();
        let est = l2(&g, 2);
        let exact = (2.0 * std::f64::consts::PI / 100.0).cos();
        assert!((est - exact).abs() < 2e-2, "estimate {est}, exact {exact}");
    }

    #[test]
    fn complete_bipartite_lambda2_detected_via_lazy_walk() {
        // K_{m,m} has an eigenvalue -1 (period 2); |λ₂| = 1.
        let g = generators::complete_bipartite(20, 20).unwrap();
        let est = l2(&g, 3);
        assert!(est > 0.95, "estimate {est}");
    }

    #[test]
    fn lambda2_errors_on_empty_or_isolated() {
        let empty = crate::builder::GraphBuilder::new(0).build().unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(lambda2(&empty, PowerIterationOptions::default(), &mut rng).is_err());
        let iso = crate::builder::GraphBuilder::new(3)
            .add_edge(0, 1)
            .unwrap()
            .build()
            .unwrap();
        assert!(lambda2(&iso, PowerIterationOptions::default(), &mut rng).is_err());
    }

    #[test]
    fn lambda2_refuses_huge_graphs_with_a_typed_error() {
        // A long cycle is cheap to build (O(n) memory) but over the
        // dense-analysis limit, so the guard must fire before any work.
        let g = generators::cycle(crate::DENSE_ANALYSIS_VERTEX_LIMIT + 1).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        match lambda2(&g, PowerIterationOptions::default(), &mut rng) {
            Err(GraphError::TooLarge { n, limit, .. }) => {
                assert_eq!(n, crate::DENSE_ANALYSIS_VERTEX_LIMIT + 1);
                assert_eq!(limit, crate::DENSE_ANALYSIS_VERTEX_LIMIT);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn lambda2_is_within_unit_interval_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = generators::erdos_renyi_gnp(200, 0.2, &mut rng).unwrap();
        let est = l2(&g, 4);
        assert!((0.0..=1.0).contains(&est));
        // Dense ER graphs are good expanders: λ₂ should be well below 1.
        assert!(est < 0.5, "estimate {est}");
    }

    #[test]
    fn conductance_of_barbell_bridge_is_small() {
        let g = generators::barbell(30, 1).unwrap();
        // First clique = vertices 0..30.
        let set: Vec<usize> = (0..30).collect();
        let phi = conductance(&g, &set).unwrap();
        assert!(phi < 0.01, "conductance {phi}");
    }

    #[test]
    fn conductance_of_half_complete_graph() {
        let g = generators::complete(20);
        let set: Vec<usize> = (0..10).collect();
        let phi = conductance(&g, &set).unwrap();
        // Each of the 10 vertices has 10 cross edges out of 19 total.
        assert!((phi - 100.0 / 190.0).abs() < 1e-9);
    }

    #[test]
    fn conductance_rejects_degenerate_cuts() {
        let g = generators::complete(5);
        assert!(conductance(&g, &[]).is_err());
        assert!(conductance(&g, &[0, 1, 2, 3, 4]).is_err());
        assert!(conductance(&g, &[7]).is_err());
    }

    #[test]
    fn expander_threshold_scales_with_volume() {
        let g = generators::complete(100);
        let thr = expander_bias_threshold(&g, 0.1);
        assert!((thr - 4.0 * 0.01 * (100.0 * 99.0)).abs() < 1e-6);
    }
}
