//! Implicit (procedural) graph topologies.
//!
//! The paper's regime is *dense* graphs — exactly where a materialised CSR
//! is most wasteful: `Θ(n²)` adjacency memory caps every experiment near
//! `n ≈ 10⁴–10⁵` while the dynamics only ever ask two questions of the
//! graph ("what is `deg(v)`?" and "give me a uniform random neighbour of
//! `v`").  [`Topology`] abstracts exactly those questions, so a graph can be
//! *procedural*: edges are defined by arithmetic or by a deterministic
//! pairwise hash and never stored.  A million-vertex complete graph is then
//! a few machine words instead of ~8 TB of adjacency.
//!
//! Implementations:
//!
//! * [`Complete`], [`CompleteBipartite`], [`CompleteMultipartite`] — closed
//!   form: neighbour rows are synthesised arithmetically, `O(1)` per sample;
//! * [`ImplicitGnp`] — Erdős–Rényi `G(n, p)` where the edge `{u, v}` exists
//!   iff `h(seed, u, v) < p·2⁶⁴` for a fixed 64-bit mixing hash; neighbour
//!   draws use rejection sampling, expected `1/p` tries, so `O(1)` in the
//!   dense regime the paper targets;
//! * [`ImplicitSbm`] — planted-partition stochastic block model over the
//!   same hash scheme with per-block-pair probabilities `p_in` / `p_out`;
//! * [`CsrTopology`] — adapter over a materialised [`CsrGraph`], so every
//!   existing graph flows through the same interface (and keeps its batched
//!   kernel fast path via [`Topology::as_csr`]).
//!
//! # Determinism contract
//!
//! Implicit topologies are *frozen* random graphs: the edge set is a pure
//! function of the constructor parameters (including the hash `seed`), so
//! two topologies built with the same parameters are the same graph — across
//! runs, threads and machines.  Neighbour sampling consumes the caller's RNG
//! in a defined way:
//!
//! * closed-form topologies ([`Complete`], [`CompleteBipartite`],
//!   [`CompleteMultipartite`]) and [`CsrTopology`] consume **exactly one
//!   `next_u64` per sample**, reduced with the same Lemire multiply-shift
//!   ([`lemire_index`]) as the dynamics kernels and the vendored
//!   `gen_range`, keeping them on the same stream as the materialised path;
//! * hash-defined topologies ([`ImplicitGnp`], [`ImplicitSbm`]) consume one
//!   `next_u64` per rejection-sampling *try* (expected `1/p` tries), which
//!   is still deterministic given the RNG — the draw count depends only on
//!   the frozen edge set and the stream, never on thread count or timing.
//!
//! The `bo3-dynamics` kernels are generic over this trait; their
//! sequential-equals-parallel guarantee derives per-chunk RNG streams
//! *outside* the topology, so both properties compose: a seeded run on any
//! topology is bit-identical at any thread count.
//!
//! # The draw-ahead (batched) sampling contract
//!
//! The hash-defined topologies additionally expose their frozen edge set as
//! a copyable [`PairHashSpec`] (via [`Topology::pair_hash_spec`]), which the
//! batched sampler in [`crate::lane`] evaluates SIMD-wide.  A
//! [`crate::NeighbourLane`] over that spec **pre-draws** candidates with
//! sequential `next_u64` calls and consumes them strictly in draw order, so
//! every accepted neighbour and every per-draw try count is *bit-identical*
//! to the scalar `sample_neighbour_tries` loop here — the only observable
//! difference is the RNG's final position, because a lane may hold
//! drawn-but-unconsumed tail values when it is dropped.  Two rules keep that
//! sound, and observers/checkpoints rely on both:
//!
//! * **consume-in-order** — a lane never reorders or skips draws; try `i`
//!   of a vertex's sample is always the `i`-th pre-drawn candidate;
//! * **discard-tail** — lanes are only used where the RNG stream is scoped
//!   to the work unit (the per-`(seed, round, chunk)` kernel streams and
//!   the per-round async stream) and dropped at its end, so the pre-drawn
//!   tail is never observed by later draws.  Entry points fed a caller's
//!   long-lived RNG keep the scalar sampler, whose final stream position is
//!   part of their contract.

use rand::RngCore;

use crate::csr::{CsrGraph, VertexId};
use crate::error::{GraphError, Result};
use crate::lane::{self, PairHashSpec};
use crate::oracle::{
    concentration_window, DegreeClass, DegreeOracle, DEGREE_ORACLE_FAILURE_PROBABILITY,
};

/// Gives up on rejection sampling after this many consecutive misses.
///
/// With edge probability `p`, the chance of `2²⁰` consecutive misses is
/// `(1-p)^(2²⁰)` — zero for every realistic dense parameterisation — so
/// tripping this cap means the vertex is (effectively) isolated and the
/// topology is outside its supported regime; panicking loudly beats looping
/// forever.
pub(crate) const MAX_REJECTIONS: usize = 1 << 20;

/// Maps one `u64` draw onto `[0, n)` with Lemire's multiply-shift reduction.
///
/// Bit-identical to the vendored `rng.gen_range(0..n)` (a fixed-point
/// multiply with no rejection step).  Every topology and every dynamics
/// kernel reduces draws through this single function, which is what keeps
/// the implicit and materialised paths on the same RNG stream.
#[inline(always)]
pub fn lemire_index(draw: u64, n: usize) -> usize {
    debug_assert!(n > 0);
    ((draw as u128 * n as u128) >> 64) as usize
}

/// SplitMix64 finaliser: the avalanching mix shared by the stream-id
/// derivations in `bo3-dynamics` and the pairwise edge hash here.
#[inline(always)]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic pairwise edge hash: a 64-bit value for the unordered
/// pair `{u, v}` under `seed`, uniform and independent across pairs for the
/// purposes of Monte-Carlo work (two chained SplitMix64 finalisation
/// rounds).  Symmetric by construction (the pair is canonicalised).
#[inline(always)]
pub(crate) fn pair_hash(seed: u64, u: VertexId, v: VertexId) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    let lo = mix64(seed.wrapping_add((a as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    mix64(lo ^ (b as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

/// Converts an edge probability into the 65-bit threshold compared against
/// [`pair_hash`]: the edge exists iff `hash < p · 2⁶⁴` (so `p = 1` keeps
/// every edge and `p = 0` none).
#[inline]
fn probability_threshold(p: f64) -> u128 {
    debug_assert!((0.0..=1.0).contains(&p));
    ((p * (u64::MAX as f64 + 1.0)) as u128).min(1u128 << 64)
}

/// Materialises any topology's frozen edge set as a [`CsrGraph`] by scanning
/// all `Θ(n²)` pairs through [`Topology::has_edge`] — for tests and
/// small-`n` cross-checks only, so it is guarded by
/// [`crate::DENSE_ANALYSIS_VERTEX_LIMIT`].
pub fn materialize<T: Topology>(topo: &T) -> Result<CsrGraph> {
    let n = topo.n();
    if n > crate::DENSE_ANALYSIS_VERTEX_LIMIT {
        return Err(GraphError::TooLarge {
            n,
            limit: crate::DENSE_ANALYSIS_VERTEX_LIMIT,
            operation: "materializing an implicit topology",
        });
    }
    let mut builder = crate::builder::GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if topo.has_edge(u, v) {
                builder.push_edge(u, v)?;
            }
        }
    }
    builder.build()
}

/// A graph topology as seen by the voting dynamics: vertex count, degrees
/// and uniform neighbour sampling — nothing else.
///
/// Implementations may *synthesise* adjacency (see the module docs for the
/// catalogue and the determinism contract) or wrap a materialised
/// [`CsrGraph`] ([`CsrTopology`]).  The trait is deliberately not
/// object-safe (sampling is generic over the RNG); the dynamics kernels
/// monomorphize over it, so an implicit topology pays no dispatch cost.
pub trait Topology: Sync {
    /// Number of vertices (ids are always `0..n`).
    fn n(&self) -> usize;

    /// Degree of `v`.
    ///
    /// Closed-form topologies answer in `O(1)`; hash-defined topologies
    /// ([`ImplicitGnp`], [`ImplicitSbm`]) must *count* their frozen edge
    /// set, which is `Θ(n)` per call — fine for diagnostics, not for hot
    /// loops (the sampling kernels never call it).
    fn degree(&self, v: VertexId) -> usize;

    /// Whether the undirected edge `{u, v}` is present (`false` for `u == v`
    /// and out-of-range ids).
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool;

    /// Samples one uniform random neighbour of `v` (with replacement across
    /// calls), consuming `rng` as the module-level determinism contract
    /// describes.
    fn sample_neighbour<R: RngCore + ?Sized>(&self, v: VertexId, rng: &mut R) -> VertexId;

    /// [`Topology::sample_neighbour`] plus the number of candidate *tries*
    /// the draw consumed — `1` for closed-form and materialised samplers,
    /// the rejection count (expected `1/p`) for hash-defined topologies.
    ///
    /// The two entry points consume the RNG identically (the default
    /// delegates, and overriders must preserve this), so metering a sampler
    /// through this method can never change what the unmetered path draws —
    /// the engine's bit-identity contract for observers rests on that.
    #[inline]
    fn sample_neighbour_tries<R: RngCore + ?Sized>(
        &self,
        v: VertexId,
        rng: &mut R,
    ) -> (VertexId, u64) {
        (self.sample_neighbour(v, rng), 1)
    }

    /// Samples `out.len()` neighbours of `v` uniformly with replacement.
    #[inline]
    fn sample_neighbours_into<R: RngCore + ?Sized>(
        &self,
        v: VertexId,
        out: &mut [VertexId],
        rng: &mut R,
    ) {
        for slot in out.iter_mut() {
            *slot = self.sample_neighbour(v, rng);
        }
    }

    /// Calls `f` once per neighbour of `v`.
    ///
    /// Materialised and closed-form topologies iterate their row directly;
    /// hash-defined topologies scan all `n - 1` candidate endpoints, so a
    /// full-neighbourhood protocol (local majority) on them is `Θ(n)` per
    /// vertex by nature.
    fn for_each_neighbour<F: FnMut(VertexId)>(&self, v: VertexId, f: F);

    /// The raw CSR arrays `(offsets, neighbours)` when this topology is
    /// backed by materialised adjacency, enabling the dynamics' batched
    /// (software-pipelined) kernel path.  Implicit topologies return `None`.
    fn as_csr(&self) -> Option<(&[usize], &[VertexId])> {
        None
    }

    /// The materialised [`CsrGraph`] behind this topology, when there is
    /// one.  This is what lets a topology-generic engine serve the
    /// graph-only features (custom `dyn` protocols reading neighbour rows,
    /// realised degree sequences) without a separate materialised engine;
    /// implicit topologies return `None`.
    fn as_graph(&self) -> Option<&CsrGraph> {
        None
    }

    /// The degree oracle: what this topology knows about its degree
    /// sequence *without reading it* — exact contiguous degree classes for
    /// the closed-form families, a simultaneous concentration window (with
    /// documented failure probability) for the hash-defined ones.
    ///
    /// `None` (the default) means no oracle; materialised graphs answer
    /// degree queries in `O(1)` directly and provide none.
    fn degree_oracle(&self) -> Option<DegreeOracle> {
        None
    }

    /// `true` when every vertex is adjacent to every other vertex (the
    /// complete graph), which lets full-neighbourhood protocols replace the
    /// row scan with one popcount of the opinion snapshot.
    fn is_all_but_self(&self) -> bool {
        false
    }

    /// The copyable frozen-hash edge-set description behind this topology,
    /// when it is hash-defined — what the batched draw-ahead sampler
    /// ([`crate::NeighbourLane`]) evaluates SIMD-wide.  `None` (the
    /// default) for closed-form and materialised topologies, whose scalar
    /// samplers are already one draw per accept.  See the module-level
    /// draw-ahead contract for when callers may batch over this.
    fn pair_hash_spec(&self) -> Option<PairHashSpec> {
        None
    }

    /// `true` when [`Topology::for_each_neighbour`] costs `O(deg)` (stored
    /// or closed-form rows).  Hash-defined topologies return `false`: their
    /// row enumeration tests all `n − 1` candidate pairs, so
    /// full-neighbourhood protocols on them are `Θ(n²)` per round — engines
    /// refuse that combination on huge graphs (the same policy as
    /// [`GraphError::TooLarge`]) instead of silently grinding.
    fn cheap_rows(&self) -> bool {
        true
    }

    /// Bytes of memory used to *represent* the topology (the quantity the
    /// scale experiment reports against the `Θ(n²)` a CSR would need).
    fn memory_bytes(&self) -> usize;

    /// Short human-readable label for reports and bench ids.
    fn label(&self) -> String;
}

/// Topologies are plain read-only data, so references delegate; this lets
/// simulators own or borrow a topology interchangeably.
impl<T: Topology + ?Sized> Topology for &T {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn degree(&self, v: VertexId) -> usize {
        (**self).degree(v)
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        (**self).has_edge(u, v)
    }

    #[inline(always)]
    fn sample_neighbour<R: RngCore + ?Sized>(&self, v: VertexId, rng: &mut R) -> VertexId {
        (**self).sample_neighbour(v, rng)
    }

    #[inline(always)]
    fn sample_neighbour_tries<R: RngCore + ?Sized>(
        &self,
        v: VertexId,
        rng: &mut R,
    ) -> (VertexId, u64) {
        (**self).sample_neighbour_tries(v, rng)
    }

    fn sample_neighbours_into<R: RngCore + ?Sized>(
        &self,
        v: VertexId,
        out: &mut [VertexId],
        rng: &mut R,
    ) {
        (**self).sample_neighbours_into(v, out, rng)
    }

    fn for_each_neighbour<F: FnMut(VertexId)>(&self, v: VertexId, f: F) {
        (**self).for_each_neighbour(v, f)
    }

    fn as_csr(&self) -> Option<(&[usize], &[VertexId])> {
        (**self).as_csr()
    }

    fn as_graph(&self) -> Option<&CsrGraph> {
        (**self).as_graph()
    }

    fn degree_oracle(&self) -> Option<DegreeOracle> {
        (**self).degree_oracle()
    }

    fn is_all_but_self(&self) -> bool {
        (**self).is_all_but_self()
    }

    fn pair_hash_spec(&self) -> Option<PairHashSpec> {
        (**self).pair_hash_spec()
    }

    fn cheap_rows(&self) -> bool {
        (**self).cheap_rows()
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }

    fn label(&self) -> String {
        (**self).label()
    }
}

/// The complete graph `K_n`, represented by `n` alone.
///
/// The neighbour row of `v` is the identity sequence with a gap at `v`
/// (`row[i] = i + (i ≥ v)`), so a sample is one draw plus one comparison —
/// the same arithmetic the dynamics kernels previously special-cased for
/// materialised complete graphs, now a first-class topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Complete {
    n: usize,
}

impl Complete {
    /// `K_n`; requires `n ≥ 2` so every vertex has a neighbour to sample.
    pub fn new(n: usize) -> Result<Self> {
        if n < 2 {
            return Err(GraphError::InvalidParameter {
                reason: format!("complete topology needs n >= 2 vertices, got {n}"),
            });
        }
        Ok(Complete { n })
    }
}

impl Topology for Complete {
    fn n(&self) -> usize {
        self.n
    }

    fn degree(&self, v: VertexId) -> usize {
        debug_assert!(v < self.n);
        self.n - 1
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u != v && u < self.n && v < self.n
    }

    #[inline(always)]
    fn sample_neighbour<R: RngCore + ?Sized>(&self, v: VertexId, rng: &mut R) -> VertexId {
        let idx = lemire_index(rng.next_u64(), self.n - 1);
        idx + usize::from(idx >= v)
    }

    fn for_each_neighbour<F: FnMut(VertexId)>(&self, v: VertexId, mut f: F) {
        for w in (0..self.n).filter(|&w| w != v) {
            f(w);
        }
    }

    fn is_all_but_self(&self) -> bool {
        true
    }

    fn degree_oracle(&self) -> Option<DegreeOracle> {
        Some(DegreeOracle::Exact(vec![DegreeClass {
            degree: self.n - 1,
            vertices: 0..self.n,
        }]))
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    fn label(&self) -> String {
        format!("implicit_complete(n={})", self.n)
    }
}

/// The complete bipartite graph `K_{a,b}`: vertices `0..a` on the left side,
/// `a..a+b` on the right, every cross pair adjacent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompleteBipartite {
    a: usize,
    b: usize,
}

impl CompleteBipartite {
    /// `K_{a,b}`; both sides must be non-empty.
    pub fn new(a: usize, b: usize) -> Result<Self> {
        if a == 0 || b == 0 {
            return Err(GraphError::InvalidParameter {
                reason: format!(
                    "complete bipartite topology needs both sides non-empty, got ({a}, {b})"
                ),
            });
        }
        Ok(CompleteBipartite { a, b })
    }
}

impl Topology for CompleteBipartite {
    fn n(&self) -> usize {
        self.a + self.b
    }

    fn degree(&self, v: VertexId) -> usize {
        debug_assert!(v < self.n());
        if v < self.a {
            self.b
        } else {
            self.a
        }
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u < self.n() && v < self.n() && (u < self.a) != (v < self.a)
    }

    #[inline(always)]
    fn sample_neighbour<R: RngCore + ?Sized>(&self, v: VertexId, rng: &mut R) -> VertexId {
        if v < self.a {
            self.a + lemire_index(rng.next_u64(), self.b)
        } else {
            lemire_index(rng.next_u64(), self.a)
        }
    }

    fn for_each_neighbour<F: FnMut(VertexId)>(&self, v: VertexId, mut f: F) {
        let range = if v < self.a {
            self.a..self.n()
        } else {
            0..self.a
        };
        for w in range {
            f(w);
        }
    }

    fn degree_oracle(&self) -> Option<DegreeOracle> {
        Some(DegreeOracle::Exact(vec![
            DegreeClass {
                degree: self.b,
                vertices: 0..self.a,
            },
            DegreeClass {
                degree: self.a,
                vertices: self.a..self.a + self.b,
            },
        ]))
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    fn label(&self) -> String {
        format!("implicit_bipartite({},{})", self.a, self.b)
    }
}

/// The complete multipartite graph: vertices are grouped into blocks and
/// every pair in *different* blocks is adjacent.  `K_{a,b}` is the two-block
/// special case; the Turán graphs are the balanced ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompleteMultipartite {
    /// Block boundary prefix sums: block `i` holds ids `offsets[i]..offsets[i+1]`.
    offsets: Vec<usize>,
}

impl CompleteMultipartite {
    /// Builds the complete multipartite topology over the given block sizes.
    /// Requires at least two blocks, all non-empty, so no vertex is isolated.
    pub fn new(block_sizes: &[usize]) -> Result<Self> {
        if block_sizes.len() < 2 {
            return Err(GraphError::InvalidParameter {
                reason: format!(
                    "complete multipartite topology needs >= 2 blocks, got {}",
                    block_sizes.len()
                ),
            });
        }
        let mut offsets = Vec::with_capacity(block_sizes.len() + 1);
        offsets.push(0usize);
        for (i, &s) in block_sizes.iter().enumerate() {
            if s == 0 {
                return Err(GraphError::InvalidParameter {
                    reason: format!("block {i} is empty"),
                });
            }
            offsets.push(offsets[i] + s);
        }
        Ok(CompleteMultipartite { offsets })
    }

    /// The block `(start, size)` containing vertex `v`.
    #[inline]
    fn block_of(&self, v: VertexId) -> (usize, usize) {
        debug_assert!(v < self.n());
        let i = self.offsets.partition_point(|&o| o <= v) - 1;
        (self.offsets[i], self.offsets[i + 1] - self.offsets[i])
    }
}

impl Topology for CompleteMultipartite {
    fn n(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    fn degree(&self, v: VertexId) -> usize {
        let (_, size) = self.block_of(v);
        self.n() - size
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u >= self.n() || v >= self.n() || u == v {
            return false;
        }
        self.block_of(u).0 != self.block_of(v).0
    }

    #[inline(always)]
    fn sample_neighbour<R: RngCore + ?Sized>(&self, v: VertexId, rng: &mut R) -> VertexId {
        let (start, size) = self.block_of(v);
        let idx = lemire_index(rng.next_u64(), self.n() - size);
        if idx < start {
            idx
        } else {
            idx + size
        }
    }

    fn for_each_neighbour<F: FnMut(VertexId)>(&self, v: VertexId, mut f: F) {
        let (start, size) = self.block_of(v);
        for w in (0..start).chain(start + size..self.n()) {
            f(w);
        }
    }

    fn degree_oracle(&self) -> Option<DegreeOracle> {
        let n = self.n();
        Some(DegreeOracle::Exact(
            self.offsets
                .windows(2)
                .map(|w| DegreeClass {
                    degree: n - (w[1] - w[0]),
                    vertices: w[0]..w[1],
                })
                .collect(),
        ))
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.offsets.len() * std::mem::size_of::<usize>()
    }

    fn label(&self) -> String {
        format!(
            "implicit_multipartite(blocks={},n={})",
            self.offsets.len() - 1,
            self.n()
        )
    }
}

/// Implicit Erdős–Rényi `G(n, p)`: the edge `{u, v}` exists iff the
/// deterministic pairwise hash of `(seed, u, v)` falls below `p·2⁶⁴`.
///
/// This is a *frozen* random graph — the same `(n, p, seed)` always names
/// the same edge set — represented in a few machine words.  Neighbour
/// sampling is rejection sampling over the `n - 1` candidate endpoints
/// (expected `1/p` tries, so `O(1)` in the paper's dense regime); degrees
/// are `Binomial(n-1, p)` exactly as in the materialised generator.
///
/// Intended for the dense regime (`p` bounded away from `0`): with tiny `p`
/// a vertex can be isolated, in which case sampling panics after
/// `2²⁰` rejections rather than spinning forever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImplicitGnp {
    n: usize,
    p: f64,
    seed: u64,
    threshold: u128,
}

impl ImplicitGnp {
    /// Implicit `G(n, p)` frozen under `seed`; requires `n ≥ 2` and
    /// `p ∈ (0, 1]` (with `p = 0` every vertex would be isolated).
    pub fn new(n: usize, p: f64, seed: u64) -> Result<Self> {
        if n < 2 {
            return Err(GraphError::InvalidParameter {
                reason: format!("implicit G(n,p) needs n >= 2 vertices, got {n}"),
            });
        }
        if !(p > 0.0 && p <= 1.0) {
            return Err(GraphError::InvalidParameter {
                reason: format!("edge probability must lie in (0, 1], got {p}"),
            });
        }
        Ok(ImplicitGnp {
            n,
            p,
            seed,
            threshold: probability_threshold(p),
        })
    }

    /// The edge probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Expected degree `p·(n − 1)`.
    pub fn expected_degree(&self) -> f64 {
        self.p * (self.n - 1) as f64
    }

    /// Materialises the frozen edge set — see the free [`materialize`].
    pub fn materialize(&self) -> Result<CsrGraph> {
        materialize(self)
    }

    /// The copyable frozen edge-set description the batched sampler and
    /// the mask-based row walks evaluate.
    #[inline]
    fn spec(&self) -> PairHashSpec {
        PairHashSpec::gnp(self.n, self.p, self.seed, self.threshold)
    }
}

impl Topology for ImplicitGnp {
    fn n(&self) -> usize {
        self.n
    }

    fn degree(&self, v: VertexId) -> usize {
        debug_assert!(v < self.n);
        lane::row_degree(&self.spec(), v)
    }

    #[inline(always)]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u != v && u < self.n && v < self.n && (pair_hash(self.seed, u, v) as u128) < self.threshold
    }

    #[inline(always)]
    fn sample_neighbour<R: RngCore + ?Sized>(&self, v: VertexId, rng: &mut R) -> VertexId {
        self.sample_neighbour_tries(v, rng).0
    }

    #[inline(always)]
    fn sample_neighbour_tries<R: RngCore + ?Sized>(
        &self,
        v: VertexId,
        rng: &mut R,
    ) -> (VertexId, u64) {
        for tries in 1..=MAX_REJECTIONS as u64 {
            let idx = lemire_index(rng.next_u64(), self.n - 1);
            let w = idx + usize::from(idx >= v);
            if (pair_hash(self.seed, v, w) as u128) < self.threshold {
                return (w, tries);
            }
        }
        self.spec().isolated_panic(v)
    }

    fn for_each_neighbour<F: FnMut(VertexId)>(&self, v: VertexId, f: F) {
        lane::row_for_each(&self.spec(), v, f)
    }

    fn cheap_rows(&self) -> bool {
        false
    }

    fn pair_hash_spec(&self) -> Option<PairHashSpec> {
        Some(self.spec())
    }

    fn degree_oracle(&self) -> Option<DegreeOracle> {
        // Degrees are Binomial(n − 1, p): mean p(n−1), variance p(1−p)(n−1).
        let trials = (self.n - 1) as f64;
        Some(DegreeOracle::Window(concentration_window(
            self.n,
            self.p * trials,
            self.p * (1.0 - self.p) * trials,
            DEGREE_ORACLE_FAILURE_PROBABILITY,
        )))
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    fn label(&self) -> String {
        format!("implicit_gnp(n={},p={})", self.n, self.p)
    }
}

/// Implicit planted-partition stochastic block model: `blocks` equal blocks
/// of `n / blocks` vertices; the edge `{u, v}` exists iff the pairwise hash
/// falls below `p_in·2⁶⁴` (same block) or `p_out·2⁶⁴` (different blocks).
///
/// The same frozen-hash scheme as [`ImplicitGnp`], so an SBM phase-transition
/// sweep at `n = 10⁶` needs no adjacency at all.  Vertices are numbered
/// block by block (as in the materialised `planted_partition` generator), so
/// `PrefixBlue`-style initial conditions paint whole communities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImplicitSbm {
    n: usize,
    block_size: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
    threshold_in: u128,
    threshold_out: u128,
}

impl ImplicitSbm {
    /// Implicit planted partition frozen under `seed`.  Requires `n ≥ 2`,
    /// `blocks ≥ 1` dividing `n`, probabilities in `[0, 1]`, and a positive
    /// probability on at least one block-pair class that actually *exists*
    /// — with a single block only `p_in` reaches any pair, and with
    /// singleton blocks only `p_out` does — otherwise every vertex would be
    /// certainly isolated and sampling could never terminate.
    pub fn new(n: usize, blocks: usize, p_in: f64, p_out: f64, seed: u64) -> Result<Self> {
        if n < 2 {
            return Err(GraphError::InvalidParameter {
                reason: format!("implicit SBM needs n >= 2 vertices, got {n}"),
            });
        }
        if blocks == 0 || !n.is_multiple_of(blocks) {
            return Err(GraphError::InvalidParameter {
                reason: format!("blocks ({blocks}) must be positive and divide n ({n})"),
            });
        }
        for (name, p) in [("p_in", p_in), ("p_out", p_out)] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(GraphError::InvalidParameter {
                    reason: format!("{name} must lie in [0, 1], got {p}"),
                });
            }
        }
        let block_size = n / blocks;
        let within_reachable = block_size > 1 && p_in > 0.0;
        let across_reachable = blocks > 1 && p_out > 0.0;
        if !within_reachable && !across_reachable {
            return Err(GraphError::InvalidParameter {
                reason: format!(
                    "no pair has positive edge probability ({blocks} blocks of {block_size}, \
                     p_in = {p_in}, p_out = {p_out}): every vertex would be isolated"
                ),
            });
        }
        Ok(ImplicitSbm {
            n,
            block_size: n / blocks,
            p_in,
            p_out,
            seed,
            threshold_in: probability_threshold(p_in),
            threshold_out: probability_threshold(p_out),
        })
    }

    /// The block index of vertex `v` (vertices are numbered block by block).
    #[inline]
    pub fn block_of(&self, v: VertexId) -> usize {
        debug_assert!(v < self.n);
        v / self.block_size
    }

    /// Expected degree `(s−1)·p_in + (n−s)·p_out` where `s` is the block size.
    pub fn expected_degree(&self) -> f64 {
        (self.block_size - 1) as f64 * self.p_in + (self.n - self.block_size) as f64 * self.p_out
    }

    /// Materialises the frozen edge set — see the free [`materialize`].
    pub fn materialize(&self) -> Result<CsrGraph> {
        materialize(self)
    }

    /// The copyable frozen edge-set description the batched sampler and
    /// the mask-based row walks evaluate.
    #[inline]
    fn spec(&self) -> PairHashSpec {
        PairHashSpec::sbm(
            self.n,
            self.block_size,
            self.p_in,
            self.p_out,
            self.seed,
            self.threshold_in,
            self.threshold_out,
        )
    }
}

impl Topology for ImplicitSbm {
    fn n(&self) -> usize {
        self.n
    }

    fn degree(&self, v: VertexId) -> usize {
        debug_assert!(v < self.n);
        lane::row_degree(&self.spec(), v)
    }

    #[inline(always)]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v || u >= self.n || v >= self.n {
            return false;
        }
        let threshold = if self.block_of(u) == self.block_of(v) {
            self.threshold_in
        } else {
            self.threshold_out
        };
        (pair_hash(self.seed, u, v) as u128) < threshold
    }

    #[inline(always)]
    fn sample_neighbour<R: RngCore + ?Sized>(&self, v: VertexId, rng: &mut R) -> VertexId {
        self.sample_neighbour_tries(v, rng).0
    }

    #[inline(always)]
    fn sample_neighbour_tries<R: RngCore + ?Sized>(
        &self,
        v: VertexId,
        rng: &mut R,
    ) -> (VertexId, u64) {
        for tries in 1..=MAX_REJECTIONS as u64 {
            let idx = lemire_index(rng.next_u64(), self.n - 1);
            let w = idx + usize::from(idx >= v);
            if self.has_edge(v, w) {
                return (w, tries);
            }
        }
        self.spec().isolated_panic(v)
    }

    fn for_each_neighbour<F: FnMut(VertexId)>(&self, v: VertexId, f: F) {
        lane::row_for_each(&self.spec(), v, f)
    }

    fn cheap_rows(&self) -> bool {
        false
    }

    fn pair_hash_spec(&self) -> Option<PairHashSpec> {
        Some(self.spec())
    }

    fn degree_oracle(&self) -> Option<DegreeOracle> {
        // Every vertex's degree is the same independent sum
        // Binomial(s − 1, p_in) + Binomial(n − s, p_out) (equal-size blocks),
        // so one Bernstein window covers the whole sequence.
        let within = (self.block_size - 1) as f64;
        let across = (self.n - self.block_size) as f64;
        Some(DegreeOracle::Window(concentration_window(
            self.n,
            self.expected_degree(),
            within * self.p_in * (1.0 - self.p_in) + across * self.p_out * (1.0 - self.p_out),
            DEGREE_ORACLE_FAILURE_PROBABILITY,
        )))
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    fn label(&self) -> String {
        format!(
            "implicit_sbm(n={},blocks={},p_in={},p_out={})",
            self.n,
            self.n / self.block_size,
            self.p_in,
            self.p_out
        )
    }
}

/// Adapter presenting a materialised [`CsrGraph`] as a [`Topology`], so
/// every existing graph flows through the same interface.  Exposes the raw
/// CSR arrays via [`Topology::as_csr`], which keeps the dynamics' batched
/// software-pipelined kernel path for materialised adjacency.
#[derive(Debug, Clone, Copy)]
pub struct CsrTopology<'g> {
    graph: &'g CsrGraph,
}

impl<'g> CsrTopology<'g> {
    /// Wraps a materialised graph (no validation; sampling a neighbour of an
    /// isolated vertex panics in debug builds, exactly like
    /// [`crate::NeighbourSampler`]).
    pub fn new(graph: &'g CsrGraph) -> Self {
        CsrTopology { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }
}

impl Topology for CsrTopology<'_> {
    fn n(&self) -> usize {
        self.graph.num_vertices()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.graph.degree(v)
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.graph.has_edge(u, v)
    }

    #[inline(always)]
    fn sample_neighbour<R: RngCore + ?Sized>(&self, v: VertexId, rng: &mut R) -> VertexId {
        let row = self.graph.neighbours(v);
        debug_assert!(!row.is_empty(), "isolated vertex {v} in CsrTopology");
        row[lemire_index(rng.next_u64(), row.len())]
    }

    fn for_each_neighbour<F: FnMut(VertexId)>(&self, v: VertexId, mut f: F) {
        for &w in self.graph.neighbours(v) {
            f(w);
        }
    }

    fn as_csr(&self) -> Option<(&[usize], &[VertexId])> {
        Some(self.graph.as_csr())
    }

    fn as_graph(&self) -> Option<&CsrGraph> {
        Some(self.graph)
    }

    fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
    }

    fn label(&self) -> String {
        format!(
            "csr(n={},m={})",
            self.graph.num_vertices(),
            self.graph.num_edges()
        )
    }
}

/// A wrapper that hides the inner topology's [`PairHashSpec`], forcing
/// every engine path back onto the strict scalar rejection sampler.
///
/// Because the batched lane consumes the RNG stream in scalar order, an
/// engine over `ScalarSampled<T>` must produce **bit-identical** dynamics
/// to the same engine over `T` — that equivalence is pinned by the
/// cross-crate `lane_sampler` tests, and the throughput gap between the
/// two is what the `e20_sampler` bench gates on (a self-relative floor
/// that holds on any machine, unlike absolute updates/s).
#[derive(Debug, Clone, Copy)]
pub struct ScalarSampled<T>(pub T);

impl<T: Topology> Topology for ScalarSampled<T> {
    fn n(&self) -> usize {
        self.0.n()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.0.degree(v)
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.0.has_edge(u, v)
    }

    #[inline(always)]
    fn sample_neighbour<R: RngCore + ?Sized>(&self, v: VertexId, rng: &mut R) -> VertexId {
        self.0.sample_neighbour(v, rng)
    }

    #[inline(always)]
    fn sample_neighbour_tries<R: RngCore + ?Sized>(
        &self,
        v: VertexId,
        rng: &mut R,
    ) -> (VertexId, u64) {
        self.0.sample_neighbour_tries(v, rng)
    }

    fn sample_neighbours_into<R: RngCore + ?Sized>(
        &self,
        v: VertexId,
        out: &mut [VertexId],
        rng: &mut R,
    ) {
        self.0.sample_neighbours_into(v, out, rng)
    }

    fn for_each_neighbour<F: FnMut(VertexId)>(&self, v: VertexId, f: F) {
        self.0.for_each_neighbour(v, f)
    }

    fn as_csr(&self) -> Option<(&[usize], &[VertexId])> {
        self.0.as_csr()
    }

    fn as_graph(&self) -> Option<&CsrGraph> {
        self.0.as_graph()
    }

    fn degree_oracle(&self) -> Option<DegreeOracle> {
        self.0.degree_oracle()
    }

    fn is_all_but_self(&self) -> bool {
        self.0.is_all_but_self()
    }

    /// Always `None` — this is the whole point of the wrapper.
    fn pair_hash_spec(&self) -> Option<PairHashSpec> {
        None
    }

    fn cheap_rows(&self) -> bool {
        self.0.cheap_rows()
    }

    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }

    fn label(&self) -> String {
        format!("scalar({})", self.0.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The free [`materialize`], unwrapped for test-sized topologies.
    fn materialize_via_has_edge<T: Topology>(topo: &T) -> CsrGraph {
        materialize(topo).unwrap()
    }

    /// Checks the three views every topology must keep consistent:
    /// `degree` == row length, `for_each_neighbour` visits exactly the
    /// `has_edge` row, and sampled neighbours lie in that row.
    fn check_consistency<T: Topology>(topo: &T, seed: u64) {
        let g = materialize_via_has_edge(topo);
        let mut rng = StdRng::seed_from_u64(seed);
        for v in 0..topo.n() {
            assert_eq!(topo.degree(v), g.degree(v), "degree of {v}");
            let mut row = Vec::new();
            topo.for_each_neighbour(v, |w| row.push(w));
            row.sort_unstable();
            assert_eq!(row, g.neighbours(v), "row of {v}");
            if g.degree(v) > 0 {
                for _ in 0..8 {
                    let w = topo.sample_neighbour(v, &mut rng);
                    assert!(g.has_edge(v, w), "sampled non-neighbour {w} of {v}");
                }
            }
        }
    }

    #[test]
    fn constructors_validate_parameters() {
        assert!(Complete::new(1).is_err());
        assert!(CompleteBipartite::new(0, 4).is_err());
        assert!(CompleteMultipartite::new(&[5]).is_err());
        assert!(CompleteMultipartite::new(&[3, 0, 2]).is_err());
        assert!(ImplicitGnp::new(1, 0.5, 0).is_err());
        assert!(ImplicitGnp::new(10, 0.0, 0).is_err());
        assert!(ImplicitGnp::new(10, 1.5, 0).is_err());
        assert!(ImplicitGnp::new(10, f64::NAN, 0).is_err());
        assert!(ImplicitSbm::new(10, 3, 0.5, 0.1, 0).is_err());
        assert!(ImplicitSbm::new(10, 2, 0.0, 0.0, 0).is_err());
        assert!(ImplicitSbm::new(10, 2, -0.1, 0.5, 0).is_err());
        // Certainly-empty block configurations: a single block reaches no
        // pair through p_out, singleton blocks none through p_in.
        assert!(ImplicitSbm::new(10, 1, 0.0, 0.5, 0).is_err());
        assert!(ImplicitSbm::new(10, 10, 0.5, 0.0, 0).is_err());
        // ...but the corresponding reachable configurations are fine.
        assert!(ImplicitSbm::new(10, 1, 0.5, 0.0, 0).is_ok());
        assert!(ImplicitSbm::new(10, 10, 0.0, 0.5, 0).is_ok());
    }

    #[test]
    fn only_hash_defined_topologies_report_expensive_rows() {
        assert!(Complete::new(5).unwrap().cheap_rows());
        assert!(CompleteBipartite::new(2, 3).unwrap().cheap_rows());
        assert!(CompleteMultipartite::new(&[2, 3]).unwrap().cheap_rows());
        let g = generators::complete(5);
        assert!(CsrTopology::new(&g).cheap_rows());
        assert!(!ImplicitGnp::new(10, 0.5, 0).unwrap().cheap_rows());
        assert!(!ImplicitSbm::new(10, 2, 0.5, 0.2, 0).unwrap().cheap_rows());
    }

    #[test]
    fn complete_topology_matches_materialised_complete_graph() {
        let topo = Complete::new(9).unwrap();
        assert!(topo.is_all_but_self());
        assert_eq!(materialize_via_has_edge(&topo), generators::complete(9));
        check_consistency(&topo, 1);
    }

    #[test]
    fn complete_sampling_is_uniform_and_never_self() {
        let topo = Complete::new(11).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 50_000;
        let mut counts = [0usize; 11];
        for _ in 0..trials {
            counts[topo.sample_neighbour(4, &mut rng)] += 1;
        }
        assert_eq!(counts[4], 0, "a vertex must never sample itself");
        let expected = trials as f64 / 10.0;
        for (w, &c) in counts.iter().enumerate() {
            if w != 4 {
                assert!(
                    (c as f64 - expected).abs() < expected * 0.1,
                    "neighbour {w}: {c} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn bipartite_topology_matches_materialised_bipartite_graph() {
        let topo = CompleteBipartite::new(4, 7).unwrap();
        assert_eq!(
            materialize_via_has_edge(&topo),
            generators::complete_bipartite(4, 7).unwrap()
        );
        check_consistency(&topo, 3);
    }

    #[test]
    fn multipartite_topology_is_consistent_and_generalises_bipartite() {
        let topo = CompleteMultipartite::new(&[3, 4, 5]).unwrap();
        assert_eq!(topo.n(), 12);
        assert_eq!(topo.degree(0), 9);
        assert_eq!(topo.degree(5), 8);
        assert_eq!(topo.degree(11), 7);
        assert!(!topo.has_edge(0, 2), "same block");
        assert!(topo.has_edge(0, 3), "different blocks");
        check_consistency(&topo, 4);

        let two = CompleteMultipartite::new(&[4, 7]).unwrap();
        assert_eq!(
            materialize_via_has_edge(&two),
            materialize_via_has_edge(&CompleteBipartite::new(4, 7).unwrap())
        );
    }

    #[test]
    fn implicit_gnp_is_frozen_and_symmetric() {
        let a = ImplicitGnp::new(60, 0.4, 9).unwrap();
        let b = ImplicitGnp::new(60, 0.4, 9).unwrap();
        assert_eq!(a.materialize().unwrap(), b.materialize().unwrap());
        for u in 0..60 {
            for v in 0..60 {
                assert_eq!(a.has_edge(u, v), a.has_edge(v, u), "({u},{v})");
            }
            assert!(!a.has_edge(u, u));
        }
        // A different seed names a different graph (overwhelmingly likely).
        let c = ImplicitGnp::new(60, 0.4, 10).unwrap();
        assert_ne!(a.materialize().unwrap(), c.materialize().unwrap());
    }

    #[test]
    fn implicit_gnp_views_are_consistent() {
        check_consistency(&ImplicitGnp::new(70, 0.5, 11).unwrap(), 5);
    }

    #[test]
    fn implicit_gnp_edge_density_tracks_p() {
        for &p in &[0.2f64, 0.5, 0.8] {
            let topo = ImplicitGnp::new(200, p, 21).unwrap();
            let g = topo.materialize().unwrap();
            let pairs = (200 * 199 / 2) as f64;
            let expected = p * pairs;
            let sd = (pairs * p * (1.0 - p)).sqrt();
            let got = g.num_edges() as f64;
            assert!(
                (got - expected).abs() < 5.0 * sd + 1.0,
                "p={p}: {got} edges vs expected {expected} (sd {sd})"
            );
            assert!((topo.expected_degree() - p * 199.0).abs() < 1e-12);
        }
    }

    #[test]
    fn implicit_gnp_p_one_is_the_complete_graph() {
        let topo = ImplicitGnp::new(40, 1.0, 3).unwrap();
        assert_eq!(topo.materialize().unwrap(), generators::complete(40));
        assert_eq!(topo.degree(7), 39);
    }

    #[test]
    fn implicit_sbm_respects_block_structure() {
        let dense_in = ImplicitSbm::new(60, 3, 1.0, 0.0, 5).unwrap();
        let g = dense_in.materialize().unwrap();
        // p_in = 1, p_out = 0: three disjoint 20-cliques.
        assert_eq!(g.num_edges(), 3 * (20 * 19 / 2));
        assert!(g.has_edge(0, 1) && !g.has_edge(0, 20));
        assert_eq!(dense_in.block_of(19), 0);
        assert_eq!(dense_in.block_of(20), 1);

        check_consistency(&ImplicitSbm::new(48, 2, 0.7, 0.3, 6).unwrap(), 7);
    }

    #[test]
    fn implicit_sbm_densities_track_the_two_probabilities() {
        let topo = ImplicitSbm::new(200, 2, 0.6, 0.1, 8).unwrap();
        let g = topo.materialize().unwrap();
        let mut within = 0usize;
        let mut across = 0usize;
        for (u, v) in g.edges() {
            if topo.block_of(u) == topo.block_of(v) {
                within += 1;
            } else {
                across += 1;
            }
        }
        // Expected within ≈ 2·C(100,2)·0.6 = 5940, across ≈ 100·100·0.1 = 1000.
        assert!(
            within > 3 * across,
            "within={within}, across={across} should be strongly separated"
        );
        let expected = topo.expected_degree();
        assert!((expected - (99.0 * 0.6 + 100.0 * 0.1)).abs() < 1e-12);
    }

    #[test]
    fn csr_topology_delegates_to_the_graph() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = generators::erdos_renyi_gnp(80, 0.3, &mut rng).unwrap();
        let topo = CsrTopology::new(&g);
        assert_eq!(topo.n(), 80);
        assert!(topo.as_csr().is_some());
        assert_eq!(topo.memory_bytes(), g.memory_bytes());
        check_consistency(&topo, 13);
    }

    #[test]
    fn csr_topology_sampling_matches_gen_range_stream() {
        // One Lemire-reduced u64 per sample — the same stream the kernels
        // and the vendored gen_range consume.
        use rand::Rng;
        let g = generators::complete(23);
        let topo = CsrTopology::new(&g);
        let mut a = StdRng::seed_from_u64(14);
        let mut b = StdRng::seed_from_u64(14);
        for v in 0..23 {
            let via_topo = topo.sample_neighbour(v, &mut a);
            let via_gen_range = g.neighbour_at(v, b.gen_range(0..g.degree(v)));
            assert_eq!(via_topo, via_gen_range);
        }
    }

    #[test]
    fn implicit_memory_is_constant_while_csr_grows() {
        let implicit = Complete::new(1_000_000).unwrap();
        assert!(implicit.memory_bytes() <= 64);
        let gnp = ImplicitGnp::new(1_000_000, 0.5, 0).unwrap();
        assert!(gnp.memory_bytes() <= 64);
        let g = generators::complete(500);
        assert!(CsrTopology::new(&g).memory_bytes() > 500 * 499 * 8);
    }

    #[test]
    fn materialize_refuses_huge_graphs() {
        let big = ImplicitGnp::new(crate::DENSE_ANALYSIS_VERTEX_LIMIT + 1, 0.5, 0).unwrap();
        assert!(matches!(
            big.materialize(),
            Err(GraphError::TooLarge { .. })
        ));
        let big_sbm =
            ImplicitSbm::new(crate::DENSE_ANALYSIS_VERTEX_LIMIT + 2, 2, 0.5, 0.1, 0).unwrap();
        assert!(matches!(
            big_sbm.materialize(),
            Err(GraphError::TooLarge { .. })
        ));
    }

    #[test]
    fn reference_delegation_preserves_behaviour() {
        let topo = Complete::new(10).unwrap();
        let by_ref: &Complete = &topo;
        assert_eq!(by_ref.n(), 10);
        assert_eq!(by_ref.degree(3), 9);
        assert!(by_ref.is_all_but_self());
        assert_eq!(by_ref.label(), topo.label());
        let mut a = StdRng::seed_from_u64(15);
        let mut b = StdRng::seed_from_u64(15);
        let mut buf = [0usize; 5];
        by_ref.sample_neighbours_into(2, &mut buf, &mut a);
        for &w in &buf {
            assert_eq!(w, topo.sample_neighbour(2, &mut b));
        }
    }

    /// The oracle ground truth: per-vertex degrees through the `Θ(n)` scan
    /// the oracle exists to replace.
    fn scanned_degrees<T: Topology>(topo: &T) -> Vec<usize> {
        (0..topo.n()).map(|v| topo.degree(v)).collect()
    }

    #[test]
    fn exact_oracles_match_the_degree_scan() {
        let complete = Complete::new(9).unwrap();
        let bipartite = CompleteBipartite::new(4, 7).unwrap();
        let multipartite = CompleteMultipartite::new(&[3, 4, 5]).unwrap();
        let check = |oracle: crate::oracle::DegreeOracle, degrees: Vec<usize>| {
            assert!(oracle.is_exact());
            assert_eq!(oracle.n(), degrees.len());
            for (v, &d) in degrees.iter().enumerate() {
                assert_eq!(oracle.degree_bounds(v), (d, d), "vertex {v}");
            }
            let mut sorted = degrees.clone();
            sorted.sort_unstable();
            for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let k = (q * (sorted.len() - 1) as f64).floor() as usize;
                assert_eq!(oracle.quantile(q), (sorted[k], sorted[k]), "q={q}");
            }
        };
        check(
            complete.degree_oracle().unwrap(),
            scanned_degrees(&complete),
        );
        check(
            bipartite.degree_oracle().unwrap(),
            scanned_degrees(&bipartite),
        );
        check(
            multipartite.degree_oracle().unwrap(),
            scanned_degrees(&multipartite),
        );
    }

    #[test]
    fn exact_oracle_ranking_matches_a_stable_degree_sort() {
        let topo = CompleteMultipartite::new(&[3, 4, 5]).unwrap();
        let oracle = topo.degree_oracle().unwrap();
        let degrees = scanned_degrees(&topo);
        for highest in [true, false] {
            for count in [0usize, 1, 3, 7, 12] {
                let mut by_deg: Vec<usize> = (0..topo.n()).collect();
                if highest {
                    by_deg.sort_by_key(|&v| std::cmp::Reverse(degrees[v]));
                } else {
                    by_deg.sort_by_key(|&v| degrees[v]);
                }
                let mut expected: Vec<usize> = by_deg[..count].to_vec();
                expected.sort_unstable();
                let mut got: Vec<usize> = oracle
                    .ranked_vertices(count, highest)
                    .into_iter()
                    .flatten()
                    .collect();
                got.sort_unstable();
                assert_eq!(got, expected, "highest={highest} count={count}");
            }
        }
    }

    #[test]
    fn hash_defined_windows_contain_every_realised_degree() {
        let gnp = ImplicitGnp::new(400, 0.4, 7).unwrap();
        let sbm = ImplicitSbm::new(400, 4, 0.6, 0.2, 9).unwrap();
        let check = |oracle: crate::oracle::DegreeOracle, degrees: Vec<usize>| {
            let crate::oracle::DegreeOracle::Window(w) = &oracle else {
                panic!("hash-defined families must report a window oracle");
            };
            assert!(w.failure_probability <= DEGREE_ORACLE_FAILURE_PROBABILITY);
            for (v, &d) in degrees.iter().enumerate() {
                assert!(
                    (w.lo..=w.hi).contains(&d),
                    "vertex {v}: degree {d} outside window [{}, {}]",
                    w.lo,
                    w.hi
                );
            }
            // Ranked queries stay answerable: a canonical prefix.
            assert_eq!(oracle.ranked_vertices(10, true), vec![0..10]);
        };
        check(gnp.degree_oracle().unwrap(), scanned_degrees(&gnp));
        check(sbm.degree_oracle().unwrap(), scanned_degrees(&sbm));
    }

    #[test]
    fn csr_topology_has_a_graph_but_no_oracle() {
        let g = generators::complete(12);
        let topo = CsrTopology::new(&g);
        assert!(topo.degree_oracle().is_none());
        assert_eq!(topo.as_graph().unwrap(), &g);
        assert!(Complete::new(12).unwrap().as_graph().is_none());
        // Reference delegation covers the new hooks too.
        let implicit = Complete::new(12).unwrap();
        let by_ref: &Complete = &implicit;
        assert!(by_ref.as_graph().is_none());
        assert!(by_ref.degree_oracle().unwrap().is_exact());
    }

    #[test]
    fn labels_name_the_family_and_size() {
        assert!(Complete::new(5).unwrap().label().contains("n=5"));
        assert!(ImplicitGnp::new(9, 0.25, 0)
            .unwrap()
            .label()
            .contains("p=0.25"));
        assert!(ImplicitSbm::new(8, 2, 0.5, 0.1, 0)
            .unwrap()
            .label()
            .contains("blocks=2"));
    }
}
