//! Breadth-first traversal and global structure checks.
//!
//! The voter-model baseline only reaches consensus on connected,
//! non-bipartite graphs, and consensus-time experiments are meaningless on a
//! disconnected graph, so every experiment validates its input with these
//! routines before running the dynamics.

use std::collections::VecDeque;

use crate::csr::{CsrGraph, VertexId};
use crate::error::{GraphError, Result};

/// Result of a single-source BFS.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// Distance from the source, `usize::MAX` for unreachable vertices.
    pub dist: Vec<usize>,
    /// BFS parent, `usize::MAX` for the source and unreachable vertices.
    pub parent: Vec<usize>,
    /// Vertices in the order they were dequeued.
    pub order: Vec<VertexId>,
}

/// Breadth-first search from `source`.
pub fn bfs(graph: &CsrGraph, source: VertexId) -> Result<BfsResult> {
    let n = graph.num_vertices();
    if source >= n {
        return Err(GraphError::VertexOutOfRange { vertex: source, n });
    }
    let mut dist = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in graph.neighbours(v) {
            if dist[w] == usize::MAX {
                dist[w] = dist[v] + 1;
                parent[w] = v;
                queue.push_back(w);
            }
        }
    }
    Ok(BfsResult {
        dist,
        parent,
        order,
    })
}

/// Connected components; returns `(component_id_per_vertex, component_count)`.
pub fn connected_components(graph: &CsrGraph) -> (Vec<usize>, usize) {
    let n = graph.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = count;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &w in graph.neighbours(v) {
                if comp[w] == usize::MAX {
                    comp[w] = count;
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// `true` when the graph is connected (the empty graph counts as connected).
pub fn is_connected(graph: &CsrGraph) -> bool {
    if graph.num_vertices() == 0 {
        return true;
    }
    connected_components(graph).1 == 1
}

/// `true` when the graph is bipartite (2-colourable).
pub fn is_bipartite(graph: &CsrGraph) -> bool {
    let n = graph.num_vertices();
    let mut colour = vec![u8::MAX; n];
    let mut queue = VecDeque::new();
    for start in 0..n {
        if colour[start] != u8::MAX {
            continue;
        }
        colour[start] = 0;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &w in graph.neighbours(v) {
                if colour[w] == u8::MAX {
                    colour[w] = 1 - colour[v];
                    queue.push_back(w);
                } else if colour[w] == colour[v] {
                    return false;
                }
            }
        }
    }
    true
}

/// Eccentricity of `v`: the greatest BFS distance to any reachable vertex.
pub fn eccentricity(graph: &CsrGraph, v: VertexId) -> Result<usize> {
    let res = bfs(graph, v)?;
    Ok(res
        .dist
        .iter()
        .copied()
        .filter(|&d| d != usize::MAX)
        .max()
        .unwrap_or(0))
}

/// Exact diameter by running BFS from every vertex. `O(n·m)`; only for the
/// small graphs used in tests and examples. Errors on disconnected graphs.
pub fn diameter_exact(graph: &CsrGraph) -> Result<usize> {
    if graph.num_vertices() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if !is_connected(graph) {
        return Err(GraphError::InvalidParameter {
            reason: "diameter undefined on a disconnected graph".into(),
        });
    }
    let mut best = 0usize;
    for v in graph.vertices() {
        best = best.max(eccentricity(graph, v)?);
    }
    Ok(best)
}

/// Lower bound on the diameter via the double-sweep heuristic (two BFS
/// passes). Cheap enough for the large graphs used in benches.
pub fn diameter_double_sweep(graph: &CsrGraph, start: VertexId) -> Result<usize> {
    let first = bfs(graph, start)?;
    let far = first
        .dist
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != usize::MAX)
        .max_by_key(|(_, &d)| d)
        .map(|(v, _)| v)
        .unwrap_or(start);
    eccentricity(graph, far)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;

    #[test]
    fn bfs_distances_on_path() {
        let g = generators::path(5).unwrap();
        let r = bfs(&g, 0).unwrap();
        assert_eq!(r.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.order[0], 0);
        assert_eq!(r.parent[0], usize::MAX);
        assert_eq!(r.parent[3], 2);
    }

    #[test]
    fn bfs_rejects_bad_source() {
        let g = generators::path(3).unwrap();
        assert!(bfs(&g, 10).is_err());
    }

    #[test]
    fn bfs_marks_unreachable_vertices() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1)
            .unwrap()
            .build()
            .unwrap();
        let r = bfs(&g, 0).unwrap();
        assert_eq!(r.dist[2], usize::MAX);
        assert_eq!(r.dist[3], usize::MAX);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = GraphBuilder::new(5)
            .add_edges([(0, 1), (2, 3)])
            .unwrap()
            .build()
            .unwrap();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn complete_graph_is_connected_not_bipartite() {
        let g = generators::complete(6);
        assert!(is_connected(&g));
        assert!(!is_bipartite(&g));
    }

    #[test]
    fn even_cycle_is_bipartite_odd_is_not() {
        assert!(is_bipartite(&generators::cycle(8).unwrap()));
        assert!(!is_bipartite(&generators::cycle(9).unwrap()));
    }

    #[test]
    fn complete_bipartite_is_bipartite() {
        let g = generators::complete_bipartite(4, 7).unwrap();
        assert!(is_bipartite(&g));
        assert!(is_connected(&g));
    }

    #[test]
    fn empty_and_trivial_graphs_are_connected_and_bipartite() {
        let empty = GraphBuilder::new(0).build().unwrap();
        assert!(is_connected(&empty));
        assert!(is_bipartite(&empty));
        let single = GraphBuilder::new(1).build().unwrap();
        assert!(is_connected(&single));
        assert!(is_bipartite(&single));
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(diameter_exact(&generators::path(6).unwrap()).unwrap(), 5);
        assert_eq!(diameter_exact(&generators::cycle(8).unwrap()).unwrap(), 4);
        assert_eq!(diameter_exact(&generators::complete(9)).unwrap(), 1);
    }

    #[test]
    fn diameter_errors_on_disconnected() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1)
            .unwrap()
            .build()
            .unwrap();
        assert!(diameter_exact(&g).is_err());
    }

    #[test]
    fn double_sweep_finds_path_diameter() {
        let g = generators::path(20).unwrap();
        // Starting from the middle, the double sweep still reaches an endpoint.
        assert_eq!(diameter_double_sweep(&g, 10).unwrap(), 19);
    }

    #[test]
    fn eccentricity_of_star_centre_and_leaf() {
        let g = generators::star(10).unwrap();
        assert_eq!(eccentricity(&g, 0).unwrap(), 1);
        assert_eq!(eccentricity(&g, 3).unwrap(), 2);
    }

    #[test]
    fn hypercube_diameter_is_dimension() {
        let g = generators::hypercube(4).unwrap();
        assert_eq!(diameter_exact(&g).unwrap(), 4);
        assert!(is_bipartite(&g));
    }
}
