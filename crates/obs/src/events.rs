//! A bounded, buffered structured event log rendered as JSONL.
//!
//! Events accumulate in memory (one pre-rendered line each) and are handed
//! to the caller as a single string ([`EventLog::to_jsonl`]) for
//! atomic-write persistence — the log never touches the filesystem itself.
//! The buffer is bounded: past `capacity` events the log counts drops
//! instead of growing, so a runaway loop cannot turn observability into an
//! OOM.
//!
//! Timestamps are nanoseconds since the log's creation (monotonic
//! [`Instant`], never wall-clock), so event files from deterministic runs
//! differ only in the timing fields — which is why they are *not* part of
//! any byte-diffed artefact set.

use std::sync::Mutex;
use std::time::Instant;

use crate::{escape_json_into, format_f64_into};

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Field<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite renders as `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(&'a str),
}

struct Buffer {
    lines: Vec<String>,
    dropped: u64,
}

/// A buffered structured JSONL event log with scoped span timers.
pub struct EventLog {
    start: Instant,
    capacity: usize,
    buffer: Mutex<Buffer>,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(1 << 16)
    }
}

impl EventLog {
    /// A log retaining at most `capacity` events (further events are
    /// counted as dropped, never silently lost).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            start: Instant::now(),
            capacity,
            buffer: Mutex::new(Buffer {
                lines: Vec::new(),
                dropped: 0,
            }),
        }
    }

    /// Nanoseconds since the log was created.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Appends one event: `{"t_ns":...,"event":"name",<fields...>}`.
    pub fn event(&self, name: &str, fields: &[(&str, Field<'_>)]) {
        let mut line = format!("{{\"t_ns\":{},\"event\":", self.elapsed_ns());
        escape_json_into(name, &mut line);
        for (key, value) in fields {
            line.push(',');
            escape_json_into(key, &mut line);
            line.push(':');
            match value {
                Field::U64(v) => line.push_str(&v.to_string()),
                Field::I64(v) => line.push_str(&v.to_string()),
                Field::F64(v) => format_f64_into(*v, &mut line),
                Field::Bool(v) => line.push_str(if *v { "true" } else { "false" }),
                Field::Str(v) => escape_json_into(v, &mut line),
            }
        }
        line.push('}');
        let mut buffer = self.buffer.lock().expect("event log poisoned");
        if buffer.lines.len() >= self.capacity {
            buffer.dropped += 1;
        } else {
            buffer.lines.push(line);
        }
    }

    /// Starts a scoped timer: on drop, the span logs
    /// `{"event":name,"wall_ns":<elapsed>}`.
    pub fn span<'a>(&'a self, name: &'a str) -> Span<'a> {
        Span {
            log: self,
            name,
            start: Instant::now(),
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buffer.lock().expect("event log poisoned").lines.len()
    }

    /// `true` when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events dropped to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.buffer.lock().expect("event log poisoned").dropped
    }

    /// The whole log as JSONL (one event object per line, trailing
    /// newline); ends with a `log_truncated` event when any were dropped.
    pub fn to_jsonl(&self) -> String {
        let buffer = self.buffer.lock().expect("event log poisoned");
        let mut out = String::new();
        for line in &buffer.lines {
            out.push_str(line);
            out.push('\n');
        }
        if buffer.dropped > 0 {
            out.push_str(&format!(
                "{{\"t_ns\":{},\"event\":\"log_truncated\",\"dropped\":{}}}\n",
                self.start.elapsed().as_nanos() as u64,
                buffer.dropped
            ));
        }
        out
    }
}

/// A scoped timer created by [`EventLog::span`]; logs its wall time on drop.
pub struct Span<'a> {
    log: &'a EventLog,
    name: &'a str,
    start: Instant,
}

impl Span<'_> {
    /// Ends the span now, attaching `fields` to the timing event.
    pub fn finish(self, fields: &[(&str, Field<'_>)]) {
        let mut all: Vec<(&str, Field<'_>)> = Vec::with_capacity(fields.len() + 1);
        all.push((
            "wall_ns",
            Field::U64(self.start.elapsed().as_nanos() as u64),
        ));
        all.extend_from_slice(fields);
        self.log.event(self.name, &all);
        std::mem::forget(self);
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.log.event(
            self.name,
            &[(
                "wall_ns",
                Field::U64(self.start.elapsed().as_nanos() as u64),
            )],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_as_one_json_object_per_line() {
        let log = EventLog::new(16);
        log.event(
            "cell_retry",
            &[
                ("cell", Field::U64(3)),
                ("reason", Field::Str("boom \"quoted\"")),
                ("backoff_ms", Field::U64(200)),
                ("fatal", Field::Bool(false)),
                ("score", Field::F64(0.5)),
            ],
        );
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"t_ns\":"));
        assert!(lines[0].contains("\"event\":\"cell_retry\""));
        assert!(lines[0].contains("\"cell\":3"));
        assert!(lines[0].contains("\"reason\":\"boom \\\"quoted\\\"\""));
        assert!(lines[0].contains("\"fatal\":false"));
        assert!(lines[0].contains("\"score\":0.5"));
        assert!(lines[0].ends_with('}'));
    }

    #[test]
    fn capacity_bounds_the_buffer_and_counts_drops() {
        let log = EventLog::new(2);
        for i in 0..5u64 {
            log.event("tick", &[("i", Field::U64(i))]);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let jsonl = log.to_jsonl();
        assert!(jsonl.contains("\"event\":\"log_truncated\",\"dropped\":3"));
    }

    #[test]
    fn spans_log_their_wall_time_on_drop() {
        let log = EventLog::new(16);
        {
            let _span = log.span("checkpoint_flush");
        }
        log.span("cell_run").finish(&[("cell", Field::U64(7))]);
        let jsonl = log.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"event\":\"checkpoint_flush\",\"wall_ns\":"));
        assert!(jsonl.contains("\"event\":\"cell_run\",\"wall_ns\":"));
        assert!(jsonl.contains("\"cell\":7"));
    }

    #[test]
    fn empty_log_renders_empty() {
        let log = EventLog::default();
        assert!(log.is_empty());
        assert_eq!(log.to_jsonl(), "");
    }
}
