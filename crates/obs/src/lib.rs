//! Zero-dependency observability primitives for the Best-of-Three stack.
//!
//! Everything in this crate is `std`-only and lock-free on the hot path:
//!
//! * [`Counter`], [`Gauge`], [`Log2Histogram`] — relaxed-atomic instruments
//!   safe to hammer from the engine's worker pool;
//! * [`SamplerMeter`] — the tries/accepts pair the rejection-sampling
//!   topologies report into;
//! * [`MetricsRegistry`] — named instruments with deterministic
//!   registration-order exposition as Prometheus text
//!   ([`MetricsRegistry::render_prometheus`]) or a JSON snapshot
//!   ([`MetricsRegistry::snapshot_json`]);
//! * [`EventLog`] — a bounded, buffered structured JSONL log with
//!   span-style scoped timers ([`EventLog::span`]).
//!
//! The design constraint inherited from the engine: observability **reads**
//! a simulation, it never participates in one.  No instrument consumes
//! randomness, takes a lock on the record path, or allocates after
//! registration, so installing metrics cannot perturb the deterministic
//! `(seed, round, chunk)` RNG-stream contract — and removing them cannot
//! change a result.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod events;
mod metrics;

pub use events::{EventLog, Field, Span};
pub use metrics::{Counter, Gauge, Log2Histogram, MetricsRegistry, SamplerMeter};

/// Appends `s` to `out` as a JSON string literal (quotes included), escaping
/// per RFC 8259.  Shared by the metrics snapshot and the event log so both
/// artefacts stay parseable by any JSON reader.
pub(crate) fn escape_json_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a finite `f64` so it always reads back as a JSON number with a
/// fractional or exponent marker (`1` becomes `1.0`), matching the repo's
/// config-JSON convention.  Non-finite values become `null` (JSON has no
/// NaN/Inf).
pub(crate) fn format_f64_into(value: f64, out: &mut String) {
    if !value.is_finite() {
        out.push_str("null");
        return;
    }
    let text = format!("{value}");
    out.push_str(&text);
    if !text.contains('.') && !text.contains('e') && !text.contains('E') {
        out.push_str(".0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escaping_covers_the_awkward_cases() {
        let mut out = String::new();
        escape_json_into("a\"b\\c\nd\te\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn floats_always_carry_a_numeric_marker() {
        let mut out = String::new();
        format_f64_into(3.0, &mut out);
        assert_eq!(out, "3.0");
        out.clear();
        format_f64_into(0.125, &mut out);
        assert_eq!(out, "0.125");
        out.clear();
        format_f64_into(f64::NAN, &mut out);
        assert_eq!(out, "null");
    }
}
