//! Lock-free instruments and the registry that exposes them.
//!
//! All instruments update with `Relaxed` atomics: per-event cost is one RMW
//! (two for a histogram), there is no locking, and readers see a value that
//! is exact once the writers have quiesced — which is when snapshots are
//! taken (end of a run, end of a campaign cell).  Torn *cross-instrument*
//! consistency mid-run is explicitly not promised; per-instrument totals
//! are.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::{escape_json_into, format_f64_into};

/// A monotonically increasing counter (events, updates, tries).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge (queue depths, in-flight cells).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Log2Histogram`]: bucket `b` holds values whose
/// bit length is `b` (bucket 0 holds exactly the value 0), so 65 buckets
/// cover the whole `u64` range.
pub const LOG2_BUCKETS: usize = 65;

/// A fixed-bucket base-2 histogram over `u64` observations (latencies in
/// nanoseconds, batch sizes).
///
/// Recording is two relaxed RMWs — no allocation, no lock, no floating
/// point — which is what makes it safe inside the engine's chunk closures.
/// Bucket `b` covers `[2^(b-1), 2^b - 1]` (bucket 0 is the single value 0),
/// so quantiles are exact to a factor of 2: plenty to tell a 40 µs
/// checkpoint flush from a 40 ms one.
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; LOG2_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram::default()
    }

    /// The bucket index of `value`: its bit length.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `b`.
    pub fn bucket_upper_bound(b: usize) -> u64 {
        debug_assert!(b < LOG2_BUCKETS);
        if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (wrapping on overflow, like Prometheus' `_sum`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let count = self.count();
        (count > 0).then(|| self.sum() as f64 / count as f64)
    }

    /// The per-bucket counts, index = bit length of the observed value.
    pub fn bucket_counts(&self) -> [u64; LOG2_BUCKETS] {
        std::array::from_fn(|b| self.buckets[b].load(Ordering::Relaxed))
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q ∈ [0, 1]`),
    /// `None` when empty — exact to a factor of 2 by construction.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper_bound(b));
            }
        }
        Some(u64::MAX)
    }
}

/// The tries/accepts pair a metered rejection sampler reports into: one
/// accepted draw may burn many candidate tries (expected `1/p` on implicit
/// `G(n, p)`), and `tries / accepts` is exactly the number the ROADMAP's
/// SIMD/geometric-skipping item needs as its baseline.
///
/// The counters are shared `Arc`s so the same instruments can live in a
/// [`MetricsRegistry`] and in the topology wrapper doing the recording.
#[derive(Debug, Clone)]
pub struct SamplerMeter {
    tries: Arc<Counter>,
    accepts: Arc<Counter>,
    lane_drawn: Arc<Counter>,
    lane_consumed: Arc<Counter>,
}

impl Default for SamplerMeter {
    fn default() -> Self {
        SamplerMeter::new()
    }
}

impl SamplerMeter {
    /// A free-standing meter (not registered anywhere).
    pub fn new() -> Self {
        SamplerMeter {
            tries: Arc::new(Counter::new()),
            accepts: Arc::new(Counter::new()),
            lane_drawn: Arc::new(Counter::new()),
            lane_consumed: Arc::new(Counter::new()),
        }
    }

    /// A meter over counters that already live in a registry (the lane
    /// counters stay free-standing unless [`Self::with_lane_counters`]
    /// replaces them too).
    pub fn from_counters(tries: Arc<Counter>, accepts: Arc<Counter>) -> Self {
        SamplerMeter {
            tries,
            accepts,
            lane_drawn: Arc::new(Counter::new()),
            lane_consumed: Arc::new(Counter::new()),
        }
    }

    /// Routes the batch-lane occupancy counters through registry-owned
    /// instruments as well.
    pub fn with_lane_counters(mut self, drawn: Arc<Counter>, consumed: Arc<Counter>) -> Self {
        self.lane_drawn = drawn;
        self.lane_consumed = consumed;
        self
    }

    /// Records one accepted draw that consumed `tries` candidate tries.
    #[inline]
    pub fn record(&self, tries: u64) {
        self.tries.add(tries);
        self.accepts.inc();
    }

    /// Records a whole batched-sampler lane's worth of work at once:
    /// `consumed` candidate tries producing `accepts` accepted draws, out
    /// of `drawn` candidates pre-drawn into the lane.  Tries/accepts
    /// totals stay identical to the scalar path recording the same work
    /// draw by draw; the extra drawn/consumed pair is what makes
    /// wasted-lane overhead (the discarded tail) visible.
    #[inline]
    pub fn record_lane(&self, consumed: u64, accepts: u64, drawn: u64) {
        self.tries.add(consumed);
        self.accepts.add(accepts);
        self.lane_drawn.add(drawn);
        self.lane_consumed.add(consumed);
    }

    /// Total candidate tries.
    pub fn tries(&self) -> u64 {
        self.tries.get()
    }

    /// Total accepted draws.
    pub fn accepts(&self) -> u64 {
        self.accepts.get()
    }

    /// Total candidates pre-drawn into batch lanes (0 on scalar-only runs).
    pub fn lane_drawn(&self) -> u64 {
        self.lane_drawn.get()
    }

    /// Total lane candidates consumed as tries; `lane_drawn − lane_consumed`
    /// is the discarded draw-ahead tail.
    pub fn lane_consumed(&self) -> u64 {
        self.lane_consumed.get()
    }

    /// Mean tries per accepted draw, `None` before any draw.
    pub fn tries_per_draw(&self) -> Option<f64> {
        let accepts = self.accepts();
        (accepts > 0).then(|| self.tries() as f64 / accepts as f64)
    }

    /// Batch-lane occupancy: fraction of pre-drawn candidates actually
    /// consumed as tries (`None` before any lane ran).  `1 − occupancy` is
    /// the draw-ahead waste the batched sampler trades for SIMD width.
    pub fn lane_occupancy(&self) -> Option<f64> {
        let drawn = self.lane_drawn();
        (drawn > 0).then(|| self.lane_consumed() as f64 / drawn as f64)
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Log2Histogram>),
}

struct Entry {
    name: String,
    help: String,
    instrument: Instrument,
}

/// A named set of instruments with deterministic exposition.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a lock and allocates;
/// do it at setup time and hold the returned `Arc` — recording through the
/// handle is lock-free.  Registering a name twice returns the existing
/// instrument (and panics if the kind differs: that is a programming error,
/// not a runtime condition).  Exposition walks entries in registration
/// order, so snapshots of the same program are byte-stable given the same
/// instrument values.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn register<T>(
        &self,
        name: &str,
        help: &str,
        wrap: impl FnOnce(Arc<T>) -> Instrument,
        unwrap: impl Fn(&Instrument) -> Option<Arc<T>>,
        fresh: impl FnOnce() -> T,
    ) -> Arc<T> {
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name '{name}'"
        );
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some(entry) = entries.iter().find(|e| e.name == name) {
            return unwrap(&entry.instrument)
                .unwrap_or_else(|| panic!("metric '{name}' already registered with another kind"));
        }
        let instrument = Arc::new(fresh());
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            instrument: wrap(instrument.clone()),
        });
        instrument
    }

    /// Registers (or fetches) a counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.register(
            name,
            help,
            Instrument::Counter,
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
            Counter::new,
        )
    }

    /// Registers (or fetches) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.register(
            name,
            help,
            Instrument::Gauge,
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            Gauge::new,
        )
    }

    /// Registers (or fetches) a log2 histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Log2Histogram> {
        self.register(
            name,
            help,
            Instrument::Histogram,
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            Log2Histogram::new,
        )
    }

    /// Renders every instrument in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` preamble per metric; histograms as cumulative
    /// `_bucket{le="..."}` series plus `_sum`/`_count`).
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for entry in entries.iter() {
            let name = &entry.name;
            out.push_str(&format!("# HELP {name} {}\n", entry.help));
            match &entry.instrument {
                Instrument::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
                }
                Instrument::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let counts = h.bucket_counts();
                    let top = counts
                        .iter()
                        .rposition(|&c| c > 0)
                        .map_or(0, |b| b.min(LOG2_BUCKETS - 2));
                    let mut cumulative = 0u64;
                    for (b, &c) in counts.iter().enumerate().take(top + 1) {
                        cumulative += c;
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                            Log2Histogram::bucket_upper_bound(b)
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
                        h.count(),
                        h.sum(),
                        h.count()
                    ));
                }
            }
        }
        out
    }

    /// Renders every instrument as one compact JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`, keys in
    /// registration order.  Histograms expose `count`, `sum`, `mean` and
    /// the non-empty `[bit_length, count]` bucket pairs.
    pub fn snapshot_json(&self) -> String {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for entry in entries.iter() {
            match &entry.instrument {
                Instrument::Counter(c) => {
                    if !counters.is_empty() {
                        counters.push(',');
                    }
                    escape_json_into(&entry.name, &mut counters);
                    counters.push_str(&format!(":{}", c.get()));
                }
                Instrument::Gauge(g) => {
                    if !gauges.is_empty() {
                        gauges.push(',');
                    }
                    escape_json_into(&entry.name, &mut gauges);
                    gauges.push_str(&format!(":{}", g.get()));
                }
                Instrument::Histogram(h) => {
                    if !histograms.is_empty() {
                        histograms.push(',');
                    }
                    escape_json_into(&entry.name, &mut histograms);
                    histograms.push_str(&format!(":{{\"count\":{},\"sum\":{}", h.count(), h.sum()));
                    histograms.push_str(",\"mean\":");
                    match h.mean() {
                        Some(mean) => format_f64_into(mean, &mut histograms),
                        None => histograms.push_str("null"),
                    }
                    histograms.push_str(",\"buckets\":[");
                    let mut first = true;
                    for (b, &c) in h.bucket_counts().iter().enumerate() {
                        if c > 0 {
                            if !first {
                                histograms.push(',');
                            }
                            first = false;
                            histograms.push_str(&format!("[{b},{c}]"));
                        }
                    }
                    histograms.push_str("]}");
                }
            }
        }
        format!("{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_do_arithmetic() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        let h = Log2Histogram::new();
        for v in [0u64, 1, 3, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1007);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 2);
        assert_eq!(counts[10], 1);
        assert_eq!(h.quantile_upper_bound(0.5), Some(3));
        assert_eq!(h.quantile_upper_bound(1.0), Some(1023));
        assert_eq!(Log2Histogram::new().quantile_upper_bound(0.5), None);
    }

    #[test]
    fn sampler_meter_reports_tries_per_draw() {
        let meter = SamplerMeter::new();
        assert_eq!(meter.tries_per_draw(), None);
        meter.record(1);
        meter.record(3);
        assert_eq!(meter.tries(), 4);
        assert_eq!(meter.accepts(), 2);
        assert_eq!(meter.tries_per_draw(), Some(2.0));
    }

    #[test]
    fn sampler_meter_tracks_lane_occupancy() {
        let meter = SamplerMeter::new();
        assert_eq!(meter.lane_occupancy(), None);
        // A lane that drew 64 candidates, consumed 48 of them as tries and
        // produced 30 accepted draws — tries/accepts identical to the
        // scalar path, occupancy 0.75.
        meter.record_lane(48, 30, 64);
        assert_eq!(meter.tries(), 48);
        assert_eq!(meter.accepts(), 30);
        assert_eq!(meter.lane_drawn(), 64);
        assert_eq!(meter.lane_consumed(), 48);
        assert_eq!(meter.lane_occupancy(), Some(0.75));
        // Scalar recording leaves the lane counters untouched.
        meter.record(2);
        assert_eq!(meter.tries(), 50);
        assert_eq!(meter.lane_drawn(), 64);
    }

    #[test]
    fn registry_deduplicates_by_name_and_exposes_in_order() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("updates_total", "updates applied");
        let b = registry.counter("updates_total", "updates applied");
        a.add(5);
        assert_eq!(b.get(), 5, "same name must return the same counter");
        registry.gauge("cells_in_flight", "cells running").set(2);
        registry
            .histogram("round_wall_ns", "per-round wall time")
            .record(1500);

        let prom = registry.render_prometheus();
        assert!(prom.contains("# TYPE updates_total counter"));
        assert!(prom.contains("updates_total 5"));
        assert!(prom.contains("cells_in_flight 2"));
        assert!(prom.contains("# TYPE round_wall_ns histogram"));
        assert!(prom.contains("round_wall_ns_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("round_wall_ns_sum 1500"));
        // Registration order is preserved.
        let updates = prom.find("updates_total").unwrap();
        let cells = prom.find("cells_in_flight").unwrap();
        assert!(updates < cells);

        let json = registry.snapshot_json();
        assert_eq!(
            json,
            "{\"counters\":{\"updates_total\":5},\"gauges\":{\"cells_in_flight\":2},\
             \"histograms\":{\"round_wall_ns\":{\"count\":1,\"sum\":1500,\"mean\":1500.0,\
             \"buckets\":[[11,1]]}}}"
        );
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn registry_rejects_kind_mismatches() {
        let registry = MetricsRegistry::new();
        registry.counter("x", "");
        registry.gauge("x", "");
    }

    #[test]
    fn registry_snapshot_is_valid_with_no_instruments() {
        let json = MetricsRegistry::new().snapshot_json();
        assert_eq!(json, "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
    }

    #[test]
    fn histogram_prometheus_rendering_is_cumulative() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat", "latency");
        h.record(1);
        h.record(2);
        h.record(2);
        let prom = registry.render_prometheus();
        assert!(prom.contains("lat_bucket{le=\"1\"} 1"));
        assert!(prom.contains("lat_bucket{le=\"3\"} 3"));
        assert!(prom.contains("lat_bucket{le=\"+Inf\"} 3"));
        assert!(prom.contains("lat_count 3"));
    }
}
