//! `bo3-servectl` — command-line client for the `bo3_served` daemon.
//!
//! ```text
//! bo3_servectl <command> [--addr HOST:PORT] [args…]
//!
//! Commands:
//!   ping                         liveness probe
//!   submit [--file F] [--wait]   submit an experiment (JSON from F or stdin);
//!                                prints the job id, with --wait streams to the
//!                                terminal line and prints it
//!   submit-campaign [--file F]   submit a campaign; every cell becomes a job
//!   status [JOB]                 queue/job-table view (all jobs, or one)
//!   stream JOB                   follow a job's updates to its terminal line
//!   cancel JOB                   cancel a queued or running job
//!   metrics [--json]             GET /metrics (Prometheus), or the JSON snapshot
//!   shutdown                     ask the daemon to drain and exit
//!   run-local [--file F]         run the experiment in-process and print its
//!                                MonteCarloReport JSON (for determinism diffs)
//!   example-experiment           print a quick implicit-G(n,p) experiment JSON
//!   example-blocker              print a deliberately slow experiment JSON
//!   example-campaign             print a quick two-cell campaign JSON
//! ```
//!
//! Every wire line the daemon sends is printed verbatim, so the output is
//! scriptable with any JSON tool.

use std::io::Read;

use bo3_core::prelude::*;
use bo3_serve::{http_get, Client};

const DEFAULT_ADDR: &str = "127.0.0.1:7171";

struct Args {
    command: String,
    addr: String,
    file: Option<String>,
    wait: bool,
    json: bool,
    job: Option<u64>,
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| "help".into());
    let mut args = Args {
        command,
        addr: DEFAULT_ADDR.into(),
        file: None,
        wait: false,
        json: false,
        job: None,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--addr" => {
                if let Some(v) = argv.next() {
                    args.addr = v;
                }
            }
            "--file" => args.file = argv.next(),
            "--wait" => args.wait = true,
            "--json" => args.json = true,
            other => match other.parse() {
                Ok(job) => args.job = Some(job),
                Err(_) => eprintln!("ignoring unknown argument '{other}'"),
            },
        }
    }
    args
}

fn read_input(file: &Option<String>) -> Result<String> {
    match file {
        Some(path) => Ok(std::fs::read_to_string(path)?),
        None => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            Ok(buf)
        }
    }
}

/// A quick, CI-sized experiment on the implicit `G(n, p)` topology.
fn example_experiment() -> Experiment {
    Experiment::on(TopologySpec::ImplicitGnp { n: 5_000, p: 0.3 })
        .named("servectl/example")
        .initial(InitialCondition::BernoulliWithBias { delta: 0.15 })
        .replicas(3)
        .seed(1905)
}

/// A deliberately slow experiment (voter model: Θ(n) rounds on the
/// complete graph) — CI submits it before SIGTERM so the drain always
/// catches a job mid-run.
fn example_blocker() -> Experiment {
    Experiment::on(TopologySpec::Complete { n: 4_000 })
        .named("servectl/blocker")
        .protocol(ProtocolSpec::Voter)
        .initial(InitialCondition::BernoulliWithBias { delta: 1e-6 })
        .stopping(StoppingCondition::consensus_within(1_000_000))
        .replicas(16)
        .seed(4242)
}

/// A quick two-cell campaign (per-cell seeds stamped by the builder).
fn example_campaign() -> Campaign {
    Campaign::new("servectl/example-campaign", 77)
        .add_cell(
            Experiment::on(TopologySpec::Complete { n: 3_000 })
                .named("cell/complete")
                .initial(InitialCondition::BernoulliWithBias { delta: 0.2 })
                .replicas(2),
        )
        .add_cell(
            Experiment::on(TopologySpec::ImplicitGnp { n: 4_000, p: 0.4 })
                .named("cell/gnp")
                .initial(InitialCondition::BernoulliWithBias { delta: 0.1 })
                .replicas(2),
        )
}

fn stream_to_terminal(client: &mut Client, job: u64) -> Result<()> {
    client.send(&Request::Stream { job })?;
    loop {
        let response = client.recv()?;
        println!("{}", response.to_json_string());
        match response {
            Response::Update(_) => {}
            Response::Error(e) => {
                return Err(CoreError::Report {
                    reason: format!("{}: {}", e.code.as_str(), e.message),
                })
            }
            _ => return Ok(()), // done / cancelled / failed: terminal
        }
    }
}

fn run(args: Args) -> Result<()> {
    match args.command.as_str() {
        "ping" => {
            Client::connect(&args.addr)?.ping()?;
            println!("pong");
        }
        "submit" => {
            let experiment = Experiment::from_json_str(&read_input(&args.file)?)?;
            let mut client = Client::connect(&args.addr)?;
            let job = client.submit(&experiment)?;
            println!("{}", Response::Accepted { job }.to_json_string());
            if args.wait {
                stream_to_terminal(&mut client, job)?;
            }
        }
        "submit-campaign" => {
            let campaign = Campaign::from_json_str(&read_input(&args.file)?)?;
            let mut client = Client::connect(&args.addr)?;
            let (name, jobs) = client.submit_campaign(&campaign)?;
            println!(
                "{}",
                Response::CampaignAccepted { name, jobs }.to_json_string()
            );
        }
        "status" => {
            let status = Client::connect(&args.addr)?.status(args.job)?;
            println!("{}", status.to_json_string());
        }
        "stream" => {
            let job = args.job.ok_or_else(|| CoreError::Report {
                reason: "stream needs a job id".into(),
            })?;
            stream_to_terminal(&mut Client::connect(&args.addr)?, job)?;
        }
        "cancel" => {
            let job = args.job.ok_or_else(|| CoreError::Report {
                reason: "cancel needs a job id".into(),
            })?;
            Client::connect(&args.addr)?.cancel(job)?;
            println!("{}", Response::Ok.to_json_string());
        }
        "metrics" => {
            if args.json {
                let snapshot = Client::connect(&args.addr)?.metrics()?;
                println!("{}", snapshot.to_json_string());
            } else {
                print!("{}", http_get(&args.addr, "/metrics")?);
            }
        }
        "shutdown" => {
            Client::connect(&args.addr)?.shutdown()?;
            println!("{}", Response::Ok.to_json_string());
        }
        "run-local" => {
            let experiment = Experiment::from_json_str(&read_input(&args.file)?)?;
            let result = experiment.run()?;
            println!("{}", result.report.to_json_string());
        }
        "example-experiment" => println!("{}", example_experiment().to_json_string()),
        "example-blocker" => println!("{}", example_blocker().to_json_string()),
        "example-campaign" => println!("{}", example_campaign().to_json_string()),
        other => {
            eprintln!("unknown command '{other}'; see the module docs for usage");
            std::process::exit(2);
        }
    }
    Ok(())
}

fn main() {
    if let Err(e) = run(parse_args()) {
        eprintln!("bo3_servectl: {e}");
        std::process::exit(1);
    }
}
