//! `bo3_served` — the voting-as-a-service daemon.
//!
//! Usage:
//! ```text
//! cargo run --release -p bo3-serve --bin bo3_served -- \
//!     [--addr 127.0.0.1:7171] [--workers N] [--slice ROUNDS] \
//!     [--ttl-secs S] [--grace-secs S] [--events PATH]
//! ```
//!
//! Runs until SIGTERM/SIGINT (or a wire-level `shutdown` request), then
//! drains gracefully: new submissions are refused, queued jobs are
//! cancelled, in-flight jobs stop at the next round slice, every `stream`
//! subscriber receives a terminal line, and the process exits 0.  With
//! `--events PATH` the event log (including the drain deadline and
//! completion records) is written atomically on exit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use bo3_core::campaign::atomic_write;
use bo3_serve::{Service, ServiceConfig};

/// The drain flag the signal handler flips (a C signal handler cannot
/// capture an `Arc`, so the flag is parked in a static).
static TERM: OnceLock<Arc<AtomicBool>> = OnceLock::new();

#[cfg(unix)]
mod signals {
    use super::{Ordering, TERM};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.  The main loop polls the
        // flag and triggers the daemon's first-class drain.
        if let Some(flag) = TERM.get() {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Installs the SIGINT/SIGTERM handlers (after `TERM` is set).
    #[allow(unsafe_code)]
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod signals {
    /// No signal wiring off Unix — the wire-level `shutdown` request still
    /// drains the daemon.
    pub fn install() {}
}

struct Args {
    config: ServiceConfig,
    events_path: Option<String>,
}

fn parse_args() -> Args {
    let mut config = ServiceConfig {
        addr: "127.0.0.1:7171".into(),
        ..ServiceConfig::default()
    };
    let mut events_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                if let Some(v) = args.next() {
                    config.addr = v;
                }
            }
            "--workers" => {
                if let Some(v) = args.next() {
                    config.workers = v.parse().unwrap_or(config.workers);
                }
            }
            "--slice" => {
                if let Some(v) = args.next() {
                    config.rounds_per_slice = v.parse().unwrap_or(config.rounds_per_slice);
                }
            }
            "--ttl-secs" => {
                if let Some(v) = args.next() {
                    if let Ok(secs) = v.parse() {
                        config.job_ttl = Duration::from_secs(secs);
                    }
                }
            }
            "--grace-secs" => {
                if let Some(v) = args.next() {
                    if let Ok(secs) = v.parse() {
                        config.drain_grace = Duration::from_secs(secs);
                    }
                }
            }
            "--events" => events_path = args.next(),
            other => eprintln!("ignoring unknown argument '{other}'"),
        }
    }
    Args {
        config,
        events_path,
    }
}

fn main() {
    let args = parse_args();
    let term = TERM
        .get_or_init(|| Arc::new(AtomicBool::new(false)))
        .clone();
    signals::install();
    let handle = match Service::start(args.config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("bo3_served: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("bo3_served listening on {}", handle.local_addr());
    while !term.load(Ordering::SeqCst) && !handle.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("bo3_served: draining…");
    let events = handle.drain_and_join();
    if let Some(path) = args.events_path {
        if let Err(e) = atomic_write(std::path::Path::new(&path), &events) {
            eprintln!("bo3_served: could not write event log to {path}: {e}");
            std::process::exit(1);
        }
    }
    eprintln!("bo3_served: drained cleanly");
}
