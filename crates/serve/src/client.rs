//! A small blocking client for the daemon's NDJSON protocol.
//!
//! Used by `bo3-servectl`, the load generator and the wire-level tests; it
//! is deliberately the *only* client code in the workspace, so every
//! consumer exercises the same framing the daemon's tests pin.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use bo3_core::configio::Json;
use bo3_core::prelude::{
    Campaign, CoreError, Experiment, FromJson, JobReport, Request, Response, Result, RunUpdate,
    ToJson, WireError,
};
use bo3_core::wire::ErrorCode;

/// Maps a typed wire error onto the workspace error type.
fn wire_error(e: WireError) -> CoreError {
    match e.code {
        ErrorCode::InvalidConfig => CoreError::InvalidConfig { reason: e.message },
        code => CoreError::Report {
            reason: format!("{}: {}", code.as_str(), e.message),
        },
    }
}

fn unexpected(context: &str, response: &Response) -> CoreError {
    CoreError::Report {
        reason: format!(
            "unexpected response to {context}: {}",
            response.to_json_string()
        ),
    }
}

/// A blocking NDJSON connection to a running daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request line.
    pub fn send(&mut self, request: &Request) -> Result<()> {
        self.writer.write_all(request.to_json_string().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one response line.
    pub fn recv(&mut self) -> Result<Response> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(CoreError::Report {
                reason: "connection closed by daemon".into(),
            });
        }
        Response::from_json_str(line.trim())
    }

    /// One request, one response.
    pub fn request(&mut self, request: &Request) -> Result<Response> {
        self.send(request)?;
        self.recv()
    }

    /// Submits one experiment; returns its job id.
    pub fn submit(&mut self, experiment: &Experiment) -> Result<u64> {
        match self.request(&Request::Submit(Box::new(experiment.clone())))? {
            Response::Accepted { job } => Ok(job),
            Response::Error(e) => Err(wire_error(e)),
            other => Err(unexpected("submit", &other)),
        }
    }

    /// Submits a campaign; returns its name and the per-cell job ids.
    pub fn submit_campaign(&mut self, campaign: &Campaign) -> Result<(String, Vec<u64>)> {
        match self.request(&Request::SubmitCampaign(Box::new(campaign.clone())))? {
            Response::CampaignAccepted { name, jobs } => Ok((name, jobs)),
            Response::Error(e) => Err(wire_error(e)),
            other => Err(unexpected("submit-campaign", &other)),
        }
    }

    /// Streams a job to its terminal response, collecting every
    /// [`RunUpdate`] along the way.
    pub fn stream(&mut self, job: u64) -> Result<(Vec<RunUpdate>, Response)> {
        self.send(&Request::Stream { job })?;
        let mut updates = Vec::new();
        loop {
            match self.recv()? {
                Response::Update(update) => updates.push(update),
                Response::Error(e) => return Err(wire_error(e)),
                terminal => return Ok((updates, terminal)),
            }
        }
    }

    /// Streams a job and returns its finished report, or an error for any
    /// other terminal state.
    pub fn wait_done(&mut self, job: u64) -> Result<Box<JobReport>> {
        match self.stream(job)?.1 {
            Response::Done { result, .. } => Ok(result),
            Response::Cancelled { job } => Err(CoreError::Report {
                reason: format!("job {job} was cancelled"),
            }),
            Response::Failed { error, .. } => Err(CoreError::Report { reason: error }),
            other => Err(unexpected("stream", &other)),
        }
    }

    /// Cancels a job.
    pub fn cancel(&mut self, job: u64) -> Result<()> {
        match self.request(&Request::Cancel { job })? {
            Response::Ok => Ok(()),
            Response::Error(e) => Err(wire_error(e)),
            other => Err(unexpected("cancel", &other)),
        }
    }

    /// The queue / job-table view.
    pub fn status(&mut self, job: Option<u64>) -> Result<Response> {
        match self.request(&Request::Status { job })? {
            status @ Response::Status { .. } => Ok(status),
            Response::Error(e) => Err(wire_error(e)),
            other => Err(unexpected("status", &other)),
        }
    }

    /// The metrics snapshot as JSON.
    pub fn metrics(&mut self) -> Result<Json> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { snapshot } => Ok(snapshot),
            Response::Error(e) => Err(wire_error(e)),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(e) => Err(wire_error(e)),
            other => Err(unexpected("ping", &other)),
        }
    }

    /// Asks the daemon to drain and exit (the SIGTERM path, over the wire).
    pub fn shutdown(&mut self) -> Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            Response::Error(e) => Err(wire_error(e)),
            other => Err(unexpected("shutdown", &other)),
        }
    }
}

/// One-shot HTTP GET against the daemon (for `/metrics`); returns the body.
pub fn http_get<A: ToSocketAddrs>(addr: A, path: &str) -> Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: daemon\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| CoreError::Report {
            reason: "malformed HTTP response".into(),
        })?;
    let status_line = head.lines().next().unwrap_or_default();
    if !status_line.contains("200") {
        return Err(CoreError::Report {
            reason: format!("HTTP error: {status_line}"),
        });
    }
    Ok(body.to_string())
}
