//! The controller: workers that drive claimed jobs through
//! [`bo3_core::experiment::Experiment::run_cooperative`] and publish
//! progress to subscribers.
//!
//! Each worker claims one job at a time from the [`Scheduler`], builds a
//! [`RunBudget`] carrying **three** interrupt sources — the slice cap (how
//! often progress streams), the job's own cancel flag, and the daemon-wide
//! drain flag — and runs the experiment to completion, cancellation or
//! failure.  Campaign-cell jobs inherit their campaign's
//! [`bo3_core::campaign::RetryPolicy`] and re-attempt with the same
//! exponential backoff the crash-safe [`bo3_core::campaign::CampaignRunner`]
//! uses; since replica seeding is a pure function of the experiment's seed,
//! a retry from scratch is observationally identical to a resume.
//!
//! ## Determinism
//!
//! The controller clones the submitted experiment with `threads = 1` before
//! running: job-level parallelism comes from the worker pool (the daemon's
//! core budget), not from per-job thread fan-out, so eight concurrent jobs
//! on an eight-worker daemon use eight cores rather than 8 × n.  The engine
//! pins results to be thread-count independent, so this changes wall time
//! only — every report stays bit-identical to an in-process
//! [`bo3_core::experiment::Experiment::run`] at any thread setting.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bo3_core::prelude::{
    CellResult, CooperativeOutcome, JobReport, JobState, Response, RunBudget, RunUpdate, ToJson,
};
use bo3_obs::{Counter, EventLog, Field, Gauge, Log2Histogram, MetricsRegistry};

use crate::scheduler::{JobSpec, Scheduler, StreamMsg};

/// Every instrument the daemon exposes, registered once against the single
/// [`MetricsRegistry`] that `GET /metrics` renders.
pub struct ServiceMetrics {
    /// Jobs accepted over the daemon's lifetime (experiments + cells).
    pub jobs_accepted: Arc<Counter>,
    /// Jobs finished successfully.
    pub jobs_done: Arc<Counter>,
    /// Jobs that exhausted their attempts with an engine error.
    pub jobs_failed: Arc<Counter>,
    /// Jobs cancelled by a client or by the drain.
    pub jobs_cancelled: Arc<Counter>,
    /// Jobs currently executing on a worker.
    pub jobs_running: Arc<Gauge>,
    /// Jobs waiting for a worker.
    pub queue_depth: Arc<Gauge>,
    /// Wall time of finished jobs, nanoseconds.
    pub job_wall_ns: Arc<Log2Histogram>,
    /// Approximate per-round wall time, nanoseconds (slice latency divided
    /// by the slice's round cap).
    pub round_ns: Arc<Log2Histogram>,
}

impl ServiceMetrics {
    /// Registers (or re-fetches — the registry dedups by name) every
    /// instrument.
    pub fn register(registry: &MetricsRegistry) -> Self {
        ServiceMetrics {
            jobs_accepted: registry.counter(
                "service_jobs_accepted_total",
                "Jobs accepted by the daemon (experiments and campaign cells)",
            ),
            jobs_done: registry
                .counter("service_jobs_done_total", "Jobs that finished successfully"),
            jobs_failed: registry.counter(
                "service_jobs_failed_total",
                "Jobs that exhausted their retry attempts with an error",
            ),
            jobs_cancelled: registry.counter(
                "service_jobs_cancelled_total",
                "Jobs cancelled by a client or by the shutdown drain",
            ),
            jobs_running: registry.gauge(
                "service_jobs_running",
                "Jobs currently executing on a worker",
            ),
            queue_depth: registry.gauge("service_queue_depth", "Jobs waiting for a worker"),
            job_wall_ns: registry.histogram(
                "service_job_wall_ns",
                "Wall time of finished jobs in nanoseconds",
            ),
            round_ns: registry.histogram(
                "service_round_ns",
                "Approximate per-round wall time in nanoseconds",
            ),
        }
    }
}

/// One worker's claim-and-run loop; returns when the daemon drains.
pub fn worker_loop(
    scheduler: &Scheduler,
    metrics: &ServiceMetrics,
    events: &EventLog,
    rounds_per_slice: usize,
) {
    while let Some((id, cancel, spec)) = scheduler.claim() {
        metrics.queue_depth.set(scheduler.queue_depth() as i64);
        metrics.jobs_running.add(1);
        run_job(
            scheduler,
            metrics,
            events,
            rounds_per_slice,
            id,
            &cancel,
            &spec,
        );
        metrics.jobs_running.add(-1);
    }
}

/// Drives one claimed job to a terminal state.
fn run_job(
    scheduler: &Scheduler,
    metrics: &ServiceMetrics,
    events: &EventLog,
    rounds_per_slice: usize,
    id: u64,
    cancel: &Arc<AtomicBool>,
    spec: &JobSpec,
) {
    let started = Instant::now();
    let (max_attempts, retry) = match spec {
        JobSpec::Experiment(_) => (1u32, None),
        JobSpec::CampaignCell { retry, .. } => (retry.max_attempts.max(1), Some(*retry)),
    };
    // The worker pool is the core budget: per-job thread fan-out off.
    let experiment = spec.experiment().clone().threads(1);
    let budget = RunBudget {
        max_rounds_per_slice: Some(rounds_per_slice.max(1)),
        cancel_flag: Some(cancel.clone()),
        drain_flag: Some(scheduler.drain.clone()),
        ..RunBudget::default()
    };
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let mut last_slice = Instant::now();
        let outcome = experiment.run_cooperative(&budget, &mut |p| {
            let now = Instant::now();
            let slice_ns = now.duration_since(last_slice).as_nanos() as u64;
            last_slice = now;
            metrics
                .round_ns
                .record(slice_ns / rounds_per_slice.max(1) as u64);
            let update = Response::Update(RunUpdate {
                job: id,
                replicas_done: p.replicas_done,
                replicas: p.replicas,
                replica: p.replica,
                round: p.round,
                blue_fraction: p.blue_fraction,
                stop_reason: None,
            });
            scheduler.publish(
                id,
                &StreamMsg {
                    line: update.to_json_string(),
                    terminal: false,
                },
            );
        });
        match outcome {
            Ok(CooperativeOutcome::Completed(result)) => {
                let report = result.report.clone();
                let all_converged = report.outcomes.iter().all(|o| o.winner.is_some());
                let stop_reason = if all_converged {
                    "consensus"
                } else {
                    "round-limit"
                };
                let last = report.outcomes.last();
                let final_update = Response::Update(RunUpdate {
                    job: id,
                    replicas_done: report.outcomes.len(),
                    replicas: report.outcomes.len(),
                    replica: report.outcomes.len(),
                    round: last.map_or(0, |o| o.rounds),
                    blue_fraction: last.map_or(0.0, |o| o.final_blue_fraction),
                    stop_reason: Some(stop_reason.to_string()),
                });
                scheduler.publish(
                    id,
                    &StreamMsg {
                        line: final_update.to_json_string(),
                        terminal: false,
                    },
                );
                let cell = match spec {
                    JobSpec::CampaignCell { index, .. } => {
                        Some(CellResult::of(*index, &experiment.name, &report))
                    }
                    JobSpec::Experiment(_) => None,
                };
                let done = Response::Done {
                    job: id,
                    result: Box::new(JobReport {
                        name: result.name.clone(),
                        n: result.n,
                        report,
                        cell,
                    }),
                };
                scheduler.finish(id, JobState::Done, &done, None);
                metrics.jobs_done.inc();
                metrics.job_wall_ns.record(elapsed_ns(started));
                events.event(
                    "job_done",
                    &[
                        ("job", Field::U64(id)),
                        ("attempts", Field::U64(u64::from(attempts))),
                        ("stop_reason", Field::Str(stop_reason)),
                    ],
                );
                return;
            }
            Ok(CooperativeOutcome::Interrupted(_ckpt)) => {
                // Either the client cancelled or the daemon is draining; the
                // checkpoint is dropped — determinism makes a rerun
                // equivalent to a resume, and the daemon holds no disk state.
                scheduler.finish(
                    id,
                    JobState::Cancelled,
                    &Response::Cancelled { job: id },
                    None,
                );
                metrics.jobs_cancelled.inc();
                metrics.job_wall_ns.record(elapsed_ns(started));
                let cause = if cancel.load(Ordering::SeqCst) {
                    "client-cancel"
                } else {
                    "drain"
                };
                events.event(
                    "job_cancelled",
                    &[("job", Field::U64(id)), ("cause", Field::Str(cause))],
                );
                return;
            }
            Err(e) => {
                if attempts < max_attempts && !scheduler.draining() {
                    let delay = retry.as_ref().map_or(0, |r| r.delay_ms(attempts));
                    events.event(
                        "job_retry",
                        &[
                            ("job", Field::U64(id)),
                            ("attempt", Field::U64(u64::from(attempts))),
                            ("delay_ms", Field::U64(delay)),
                        ],
                    );
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                    continue;
                }
                let message = e.to_string();
                scheduler.finish(
                    id,
                    JobState::Failed,
                    &Response::Failed {
                        job: id,
                        error: message.clone(),
                    },
                    Some(message.clone()),
                );
                metrics.jobs_failed.inc();
                metrics.job_wall_ns.record(elapsed_ns(started));
                events.event(
                    "job_failed",
                    &[("job", Field::U64(id)), ("error", Field::Str(&message))],
                );
                return;
            }
        }
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}
