//! # bo3-serve — voting as a service
//!
//! A long-running experiment daemon for the Kang–Rivera reproduction: submit
//! [`bo3_core::experiment::Experiment`]s (or whole
//! [`bo3_core::campaign::Campaign`]s) over a plain TCP socket, stream their
//! round-by-round progress, and scrape Prometheus metrics — with **zero**
//! dependencies beyond the workspace's own crates and `std`.
//!
//! ## Architecture
//!
//! The daemon is three layers with a strict split of responsibilities:
//!
//! * [`transport`] — owns the sockets and nothing else: the accept loop,
//!   newline-delimited-JSON framing over the [`bo3_core::wire`] envelope,
//!   request parsing, typed protocol errors, and a minimal HTTP `GET`
//!   surface for `/metrics` scrapers.  Transport threads never run
//!   experiments and only ever hold the scheduler lock briefly, so a slow
//!   client cannot stall the engine.
//! * [`scheduler`] — the single source of truth: a fair FIFO queue and the
//!   job table, with per-job cancellation flags, subscription fan-out and
//!   TTL eviction of finished jobs.  Concurrency is bounded by the worker
//!   pool (the daemon's core budget), never by queue length.
//! * [`controller`] — the workers: each claims one job at a time and drives
//!   it through [`bo3_core::experiment::Experiment::run_cooperative`] under
//!   a [`bo3_dynamics::checkpoint::RunBudget`] that carries the round-slice
//!   cap, the job's cancel flag **and** the daemon-wide drain flag.
//!
//! ## Determinism contract
//!
//! A result served over the socket is **bit-identical** to what
//! [`bo3_core::experiment::Experiment::run`] returns in-process for the
//! same config — whatever the worker count, slice size, queue position or
//! concurrent load.  This falls out of two invariants: every RNG draw in
//! the engine is a pure function of `(master_seed, round, chunk)`, and the
//! service's progress callbacks only *observe* round-boundary checkpoints.
//! The wire format preserves the equality because the config-IO float
//! writer is shortest-round-trip lossless.  Wire-level tests pin all of it.
//!
//! ## Graceful shutdown
//!
//! SIGTERM (or a wire-level `shutdown` request) triggers a first-class
//! drain: the daemon stops accepting, cancels queued jobs, and raises one
//! shared drain flag that every in-flight `RunBudget` checks at round
//! boundaries — so all workers stop within a single round slice, every
//! subscriber receives a terminal line, and the process exits 0.  The drain
//! deadline and completion are recorded in the event log.
//!
//! ## Quickstart
//!
//! ```
//! use bo3_serve::{Client, Service, ServiceConfig};
//! use bo3_core::prelude::*;
//!
//! let handle = Service::start(ServiceConfig::default()).unwrap();
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! let experiment = Experiment::on(TopologySpec::Complete { n: 500 })
//!     .named("doc/served")
//!     .replicas(2)
//!     .seed(11);
//! let job = client.submit(&experiment).unwrap();
//! let report = client.wait_done(job).unwrap();
//! assert_eq!(report.report, experiment.run().unwrap().report); // bit-identical
//! handle.drain_and_join();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod controller;
pub mod scheduler;
pub mod transport;

pub use client::{http_get, Client};
pub use controller::ServiceMetrics;
pub use scheduler::{JobSpec, Scheduler};

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bo3_obs::{EventLog, Field, MetricsRegistry};

use transport::ServerCtx;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; port `0` picks an ephemeral port (the handle reports
    /// the actual one).
    pub addr: String,
    /// Worker threads — the number of experiments that run concurrently.
    /// `0` means the machine's available parallelism.
    pub workers: usize,
    /// Rounds per engine slice: how often progress streams, cancellation is
    /// polled and the drain flag is honoured.
    pub rounds_per_slice: usize,
    /// How long finished jobs stay queryable before lazy eviction.
    pub job_ttl: Duration,
    /// Drain budget recorded in the event log at shutdown; the drain is
    /// expected (and asserted in CI) to finish well inside it.
    pub drain_grace: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            rounds_per_slice: 64,
            job_ttl: Duration::from_secs(600),
            drain_grace: Duration::from_secs(30),
        }
    }
}

impl ServiceConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    }
}

/// The daemon entry point; [`Service::start`] returns a [`ServiceHandle`].
pub struct Service;

impl Service {
    /// Binds the listener, spawns the worker pool and the accept loop, and
    /// returns the handle the owner drives shutdown through.
    pub fn start(config: ServiceConfig) -> std::io::Result<ServiceHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let registry = Arc::new(MetricsRegistry::new());
        let metrics = Arc::new(ServiceMetrics::register(&registry));
        let events = Arc::new(EventLog::new(1 << 16));
        let scheduler = Arc::new(Scheduler::new(config.job_ttl));
        let shutdown_requested = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(Mutex::new(Vec::new()));

        let worker_count = config.resolved_workers();
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let scheduler = Arc::clone(&scheduler);
            let metrics = Arc::clone(&metrics);
            let events = Arc::clone(&events);
            let slice = config.rounds_per_slice;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("bo3-serve-worker-{i}"))
                    .spawn(move || controller::worker_loop(&scheduler, &metrics, &events, slice))?,
            );
        }

        let ctx = Arc::new(ServerCtx {
            scheduler: Arc::clone(&scheduler),
            metrics: Arc::clone(&metrics),
            registry: Arc::clone(&registry),
            events: Arc::clone(&events),
            shutdown_requested: Arc::clone(&shutdown_requested),
        });
        let accept = {
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("bo3-serve-accept".into())
                .spawn(move || transport::accept_loop(listener, ctx, connections))?
        };

        events.event(
            "service_started",
            &[
                ("workers", Field::U64(worker_count as u64)),
                (
                    "rounds_per_slice",
                    Field::U64(config.rounds_per_slice as u64),
                ),
            ],
        );
        Ok(ServiceHandle {
            local_addr,
            scheduler,
            metrics,
            registry,
            events,
            shutdown_requested,
            drain_grace: config.drain_grace,
            accept: Some(accept),
            workers,
            connections,
        })
    }
}

/// Owner's handle on a running daemon.
pub struct ServiceHandle {
    local_addr: SocketAddr,
    scheduler: Arc<Scheduler>,
    metrics: Arc<ServiceMetrics>,
    registry: Arc<MetricsRegistry>,
    events: Arc<EventLog>,
    shutdown_requested: Arc<AtomicBool>,
    drain_grace: Duration,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServiceHandle {
    /// The address the daemon actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The daemon's metrics registry (`GET /metrics` renders this).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The daemon's instruments.
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        &self.metrics
    }

    /// The daemon's scheduler (used by in-process tests).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// The event log serialised as JSONL.
    pub fn events_jsonl(&self) -> String {
        self.events.to_jsonl()
    }

    /// Whether a client asked the daemon to shut down over the wire.  The
    /// process's main loop polls this and calls [`ServiceHandle::trigger_drain`],
    /// keeping the wire path and the SIGTERM path identical.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Begins the graceful drain: stop accepting, cancel queued jobs, raise
    /// the shared drain flag every in-flight [`bo3_dynamics::checkpoint::RunBudget`]
    /// polls.  Records the drain deadline in the event log.  Idempotent.
    pub fn trigger_drain(&self) {
        if self.scheduler.draining() {
            return;
        }
        self.events.event(
            "drain_begin",
            &[
                ("grace_ms", Field::U64(self.drain_grace.as_millis() as u64)),
                (
                    "deadline_ns",
                    Field::U64(self.events.elapsed_ns().saturating_add(
                        u64::try_from(self.drain_grace.as_nanos()).unwrap_or(u64::MAX),
                    )),
                ),
            ],
        );
        let cancelled = self.scheduler.begin_drain();
        self.events.event(
            "drain_queued_cancelled",
            &[("jobs", Field::U64(cancelled.len() as u64))],
        );
    }

    /// Joins every thread (accept loop, workers, connections).  Call after
    /// [`ServiceHandle::trigger_drain`]; blocks until the drain completes
    /// and records whether it beat the grace deadline.
    pub fn join(mut self) {
        let started = Instant::now();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.connections.lock().expect("connection registry");
            guard.drain(..).collect()
        };
        for conn in handles {
            let _ = conn.join();
        }
        let elapsed = started.elapsed();
        self.events.event(
            "drain_complete",
            &[
                ("drain_ms", Field::U64(elapsed.as_millis() as u64)),
                ("within_grace", Field::Bool(elapsed <= self.drain_grace)),
            ],
        );
    }

    /// [`ServiceHandle::trigger_drain`] + [`ServiceHandle::join`], and the
    /// event log is returned for the caller to persist.
    pub fn drain_and_join(self) -> String {
        self.trigger_drain();
        let events = Arc::clone(&self.events);
        self.join();
        events.to_jsonl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_core::prelude::*;

    fn quick(name: &str, seed: u64) -> Experiment {
        Experiment::on(TopologySpec::Complete { n: 400 })
            .named(name)
            .initial(InitialCondition::BernoulliWithBias { delta: 0.2 })
            .replicas(2)
            .seed(seed)
    }

    fn tiny_service() -> ServiceHandle {
        Service::start(ServiceConfig {
            workers: 2,
            rounds_per_slice: 4,
            ..ServiceConfig::default()
        })
        .unwrap()
    }

    /// A job that holds a worker for seconds: the voter model on a complete
    /// graph needs Θ(n) rounds, so the drain / cancel paths always catch it
    /// mid-run.
    fn blocker(seed: u64) -> Experiment {
        Experiment::on(TopologySpec::Complete { n: 4_000 })
            .named("serve/blocker")
            .protocol(ProtocolSpec::Voter)
            .initial(InitialCondition::BernoulliWithBias { delta: 1e-6 })
            .stopping(StoppingCondition::consensus_within(1_000_000))
            .replicas(8)
            .seed(seed)
    }

    #[test]
    fn served_results_are_bit_identical_to_in_process_runs() {
        // One worker: the blocker occupies it, so the target job is still
        // queued when we subscribe — the update stream is race-free.
        let handle = Service::start(ServiceConfig {
            workers: 1,
            rounds_per_slice: 4,
            ..ServiceConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        let hold = client.submit(&blocker(9)).unwrap();
        let experiment = quick("serve/unit", 33);
        let job = client.submit(&experiment).unwrap();
        let subscription = handle.scheduler().subscribe(job).unwrap();
        let rx = subscription.live.expect("queued job gives a live channel");
        client.cancel(hold).unwrap();
        let served = client.wait_done(job).unwrap();
        let direct = experiment.run().unwrap();
        assert_eq!(served.report, direct.report);
        assert_eq!(served.n, direct.n);
        // The stream saw the terminal stop-reason update, then the done line.
        let mut lines = Vec::new();
        while let Ok(msg) = rx.recv_timeout(Duration::from_secs(10)) {
            let terminal = msg.terminal;
            lines.push(msg.line);
            if terminal {
                break;
            }
        }
        assert!(lines.len() >= 2);
        assert!(lines[lines.len() - 2].contains("\"stop_reason\":\"consensus\""));
        assert!(lines[lines.len() - 1].contains("\"type\":\"done\""));
        // A late subscriber over the wire gets the terminal line straight away.
        let mut late = Client::connect(handle.local_addr()).unwrap();
        let (late_updates, terminal) = late.stream(job).unwrap();
        assert!(late_updates.is_empty());
        assert!(matches!(terminal, Response::Done { .. }));
        handle.drain_and_join();
    }

    #[test]
    fn invalid_configs_are_refused_at_the_socket() {
        let handle = tiny_service();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        let bad = quick("serve/bad", 1).replicas(0);
        let err = client.submit(&bad).unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }));
        // The connection survives a refusal.
        client.ping().unwrap();
        handle.drain_and_join();
    }

    #[test]
    fn drain_cancels_in_flight_jobs_within_a_slice_and_logs_the_deadline() {
        let handle = Service::start(ServiceConfig {
            workers: 1,
            rounds_per_slice: 1,
            ..ServiceConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        let job = client.submit(&blocker(5)).unwrap();
        // Give the worker a moment to claim the job, then pull the plug.
        std::thread::sleep(Duration::from_millis(200));
        let events = handle.drain_and_join();
        assert!(events.contains("drain_begin"));
        assert!(events.contains("deadline_ns"));
        assert!(events.contains("drain_complete"));
        // The job ended cancelled, not stuck.
        let mut line_has_cancel = events.contains("job_cancelled");
        // It may also have been cancelled while still queued.
        line_has_cancel |= events.contains("drain_queued_cancelled");
        assert!(line_has_cancel);
        let _ = job;
    }

    #[test]
    fn shutdown_request_raises_the_flag_for_the_owner() {
        let handle = tiny_service();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        assert!(!handle.shutdown_requested());
        client.shutdown().unwrap();
        assert!(handle.shutdown_requested());
        handle.drain_and_join();
    }

    #[test]
    fn http_surface_serves_prometheus_and_json() {
        let handle = tiny_service();
        let prom = http_get(handle.local_addr(), "/metrics").unwrap();
        assert!(prom.contains("# TYPE service_jobs_accepted_total counter"));
        assert!(prom.contains("service_queue_depth"));
        let json = http_get(handle.local_addr(), "/metrics.json").unwrap();
        assert!(json.contains("\"counters\""));
        let status = http_get(handle.local_addr(), "/status").unwrap();
        assert!(status.contains("\"type\":\"status\""));
        assert!(http_get(handle.local_addr(), "/nope").is_err());
        handle.drain_and_join();
    }
}
