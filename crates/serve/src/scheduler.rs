//! Job table, FIFO queue and subscription fan-out.
//!
//! The scheduler is the daemon's single source of truth: one mutex-guarded
//! `State` holds every job (queued, running or terminal) plus the FIFO
//! queue of job ids waiting for a worker.  Workers block on a condvar; the
//! transport threads only ever take the lock briefly (submit, status,
//! subscribe, cancel), so slow sockets never stall the run loop.
//!
//! Concurrency is bounded by the worker pool (the daemon's core budget),
//! never by the queue: any number of jobs can wait, at most `workers` run.
//! Terminal jobs linger for [`crate::ServiceConfig::job_ttl`] so late
//! `status`/`stream` requests still see them, then are lazily evicted the
//! next time the table is touched.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bo3_core::prelude::{
    Campaign, Experiment, JobState, JobView, Response, RetryPolicy, ToJson, WireError,
};
use bo3_core::wire::ErrorCode;

/// What a job actually runs.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// A standalone experiment.
    Experiment(Box<Experiment>),
    /// One campaign cell: runs like an experiment but under the campaign's
    /// retry policy, and its terminal report carries a
    /// [`bo3_core::campaign::CellResult`].
    CampaignCell {
        /// The owning campaign's name.
        campaign: String,
        /// Cell index within the campaign grid.
        index: usize,
        /// The cell experiment (cell seed already stamped).
        experiment: Box<Experiment>,
        /// Retry-with-backoff policy inherited from the campaign.
        retry: RetryPolicy,
    },
}

impl JobSpec {
    /// The experiment this job drives.
    pub fn experiment(&self) -> &Experiment {
        match self {
            JobSpec::Experiment(e) => e,
            JobSpec::CampaignCell { experiment, .. } => experiment,
        }
    }
}

/// A line queued for one `stream` subscriber, pre-rendered once by the
/// controller so N subscribers cost N sends, not N serialisations.
#[derive(Debug, Clone)]
pub struct StreamMsg {
    /// The NDJSON response line (no trailing newline).
    pub line: String,
    /// Whether this is the subscription's last line.
    pub terminal: bool,
}

/// One job's record in the table.
pub struct Job {
    /// Job id (dense, starting at 1).
    pub id: u64,
    /// The experiment's name (shown in `status`).
    pub name: String,
    /// What to run.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub state: JobState,
    /// Per-job cancellation flag, shared into the job's `RunBudget`.
    pub cancel: Arc<AtomicBool>,
    /// Live subscriber channels (pruned when a send fails).
    pub subscribers: Vec<Sender<StreamMsg>>,
    /// Terminal response line (`done` / `failed` / `cancelled`), kept so
    /// subscribers that arrive after the fact still get an answer.
    pub terminal_line: Option<String>,
    /// Error message when `state == Failed`.
    pub error: Option<String>,
    /// When the job reached a terminal state (drives TTL eviction).
    pub finished_at: Option<Instant>,
}

impl Job {
    fn view(&self) -> JobView {
        JobView {
            job: self.id,
            state: self.state,
            name: self.name.clone(),
            error: self.error.clone(),
        }
    }
}

struct State {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, Job>,
    next_id: u64,
    accepting: bool,
}

/// The shared scheduler: job table + queue + worker condvar.
pub struct Scheduler {
    state: Mutex<State>,
    work_ready: Condvar,
    /// The daemon-wide drain flag, shared into **every** in-flight
    /// [`bo3_dynamics::checkpoint::RunBudget`].
    pub drain: Arc<AtomicBool>,
    job_ttl: Duration,
}

/// What [`Scheduler::subscribe`] hands a transport thread.
#[derive(Debug)]
pub struct Subscription {
    /// Lines to write immediately (terminal backlog for finished jobs).
    pub backlog: Vec<StreamMsg>,
    /// Live channel for a job still in flight (`None` when the backlog
    /// already ends the stream).
    pub live: Option<Receiver<StreamMsg>>,
}

impl Scheduler {
    /// An empty scheduler accepting submissions.
    pub fn new(job_ttl: Duration) -> Self {
        Scheduler {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                next_id: 1,
                accepting: true,
            }),
            work_ready: Condvar::new(),
            drain: Arc::new(AtomicBool::new(false)),
            job_ttl,
        }
    }

    /// Whether the daemon has begun draining.
    pub fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst)
    }

    fn refuse_if_draining(state: &State) -> Result<(), WireError> {
        if state.accepting {
            Ok(())
        } else {
            Err(WireError::new(
                ErrorCode::ShuttingDown,
                "daemon is draining; not accepting new jobs",
            ))
        }
    }

    fn evict_expired(&self, state: &mut State) {
        let ttl = self.job_ttl;
        let now = Instant::now();
        state.jobs.retain(|_, job| match job.finished_at {
            Some(at) => now.duration_since(at) < ttl,
            None => true,
        });
    }

    fn enqueue_locked(&self, state: &mut State, name: String, spec: JobSpec) -> u64 {
        let id = state.next_id;
        state.next_id += 1;
        state.jobs.insert(
            id,
            Job {
                id,
                name,
                spec,
                state: JobState::Queued,
                cancel: Arc::new(AtomicBool::new(false)),
                subscribers: Vec::new(),
                terminal_line: None,
                error: None,
                finished_at: None,
            },
        );
        state.queue.push_back(id);
        id
    }

    /// Enqueues one experiment; returns its job id.
    pub fn submit(&self, experiment: Box<Experiment>) -> Result<u64, WireError> {
        let mut state = self.state.lock().expect("scheduler lock");
        Self::refuse_if_draining(&state)?;
        self.evict_expired(&mut state);
        let name = experiment.name.clone();
        let id = self.enqueue_locked(&mut state, name, JobSpec::Experiment(experiment));
        drop(state);
        self.work_ready.notify_one();
        Ok(id)
    }

    /// Enqueues every cell of a campaign as its own job (cell seeds were
    /// stamped by [`Campaign::add_cell`] at build time, so per-cell
    /// determinism is identical to [`bo3_core::campaign::CampaignRunner`]).
    pub fn submit_campaign(&self, campaign: Campaign) -> Result<(String, Vec<u64>), WireError> {
        let mut state = self.state.lock().expect("scheduler lock");
        Self::refuse_if_draining(&state)?;
        self.evict_expired(&mut state);
        let Campaign {
            name,
            seed: _,
            retry,
            cells,
        } = campaign;
        let ids: Vec<u64> = cells
            .into_iter()
            .enumerate()
            .map(|(index, cell)| {
                let cell_name = cell.name.clone();
                self.enqueue_locked(
                    &mut state,
                    cell_name,
                    JobSpec::CampaignCell {
                        campaign: name.clone(),
                        index,
                        experiment: Box::new(cell),
                        retry,
                    },
                )
            })
            .collect();
        drop(state);
        self.work_ready.notify_all();
        Ok((name, ids))
    }

    /// Blocks until a job is available or the drain flag rises; workers get
    /// back the claimed job's id, cancel flag and spec (cloned out so the
    /// run happens without the lock).
    pub fn claim(&self) -> Option<(u64, Arc<AtomicBool>, JobSpec)> {
        let mut state = self.state.lock().expect("scheduler lock");
        loop {
            if self.draining() {
                return None;
            }
            // Skip jobs cancelled while still queued.
            while let Some(&id) = state.queue.front() {
                let keep = state
                    .jobs
                    .get(&id)
                    .is_some_and(|job| job.state == JobState::Queued);
                if keep {
                    break;
                }
                state.queue.pop_front();
            }
            if let Some(id) = state.queue.pop_front() {
                let job = state.jobs.get_mut(&id).expect("claimed job exists");
                job.state = JobState::Running;
                return Some((id, job.cancel.clone(), job.spec.clone()));
            }
            let (next, _timeout) = self
                .work_ready
                .wait_timeout(state, Duration::from_millis(100))
                .expect("scheduler lock");
            state = next;
        }
    }

    /// Publishes one progress line to a job's live subscribers, pruning
    /// channels whose reader hung up.
    pub fn publish(&self, id: u64, msg: &StreamMsg) {
        let mut state = self.state.lock().expect("scheduler lock");
        if let Some(job) = state.jobs.get_mut(&id) {
            job.subscribers.retain(|tx| tx.send(msg.clone()).is_ok());
        }
    }

    /// Records a job's terminal response, notifying and dropping all
    /// subscribers.  The rendered line is kept for late subscribers.
    pub fn finish(&self, id: u64, state_now: JobState, response: &Response, error: Option<String>) {
        debug_assert!(state_now.is_terminal());
        let line = response.to_json_string();
        let msg = StreamMsg {
            line: line.clone(),
            terminal: true,
        };
        let mut state = self.state.lock().expect("scheduler lock");
        if let Some(job) = state.jobs.get_mut(&id) {
            job.state = state_now;
            job.error = error;
            job.terminal_line = Some(line);
            job.finished_at = Some(Instant::now());
            for tx in job.subscribers.drain(..) {
                let _ = tx.send(msg.clone());
            }
        }
    }

    /// Flags a job for cancellation.  Queued jobs terminate immediately
    /// (workers skip them); running jobs pause at the next round slice.
    pub fn cancel(&self, id: u64) -> Result<(), WireError> {
        let terminal_now = {
            let mut state = self.state.lock().expect("scheduler lock");
            let job = state
                .jobs
                .get_mut(&id)
                .ok_or_else(|| WireError::new(ErrorCode::UnknownJob, format!("no job {id}")))?;
            match job.state {
                JobState::Queued => true,
                JobState::Running => {
                    job.cancel.store(true, Ordering::SeqCst);
                    false
                }
                // Terminal already: cancelling is a no-op acknowledgement.
                _ => false,
            }
        };
        if terminal_now {
            self.finish(
                id,
                JobState::Cancelled,
                &Response::Cancelled { job: id },
                None,
            );
        }
        Ok(())
    }

    /// Queue depth, running count and per-job views (all jobs, or one).
    pub fn status(&self, job: Option<u64>) -> Result<Response, WireError> {
        let mut state = self.state.lock().expect("scheduler lock");
        self.evict_expired(&mut state);
        if let Some(id) = job {
            if !state.jobs.contains_key(&id) {
                return Err(WireError::new(
                    ErrorCode::UnknownJob,
                    format!("no job {id}"),
                ));
            }
        }
        let queue_depth = state
            .jobs
            .values()
            .filter(|j| j.state == JobState::Queued)
            .count();
        let running = state
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count();
        let mut jobs: Vec<JobView> = state
            .jobs
            .values()
            .filter(|j| job.is_none_or(|id| j.id == id))
            .map(Job::view)
            .collect();
        jobs.sort_by_key(|v| v.job);
        Ok(Response::Status {
            queue_depth,
            running,
            jobs,
        })
    }

    /// Subscribes to a job's stream.  Terminal jobs answer immediately with
    /// their recorded terminal line; in-flight jobs get a live channel.
    pub fn subscribe(&self, id: u64) -> Result<Subscription, WireError> {
        let mut state = self.state.lock().expect("scheduler lock");
        let job = state
            .jobs
            .get_mut(&id)
            .ok_or_else(|| WireError::new(ErrorCode::UnknownJob, format!("no job {id}")))?;
        if job.state.is_terminal() {
            let line = job
                .terminal_line
                .clone()
                .unwrap_or_else(|| Response::Cancelled { job: id }.to_json_string());
            return Ok(Subscription {
                backlog: vec![StreamMsg {
                    line,
                    terminal: true,
                }],
                live: None,
            });
        }
        let (tx, rx) = std::sync::mpsc::channel();
        job.subscribers.push(tx);
        Ok(Subscription {
            backlog: Vec::new(),
            live: Some(rx),
        })
    }

    /// Number of jobs waiting for a worker (the queue-depth gauge's source).
    pub fn queue_depth(&self) -> usize {
        let state = self.state.lock().expect("scheduler lock");
        state
            .jobs
            .values()
            .filter(|j| j.state == JobState::Queued)
            .count()
    }

    /// Begins the drain: stop accepting, raise the shared drain flag (every
    /// in-flight `RunBudget` sees it at its next round boundary), cancel
    /// all queued jobs, and wake every worker so they can exit.
    ///
    /// Returns the ids of the jobs cancelled while still queued.
    pub fn begin_drain(&self) -> Vec<u64> {
        let queued: Vec<u64> = {
            let mut state = self.state.lock().expect("scheduler lock");
            state.accepting = false;
            self.drain.store(true, Ordering::SeqCst);
            state.queue.clear();
            state
                .jobs
                .values()
                .filter(|j| j.state == JobState::Queued)
                .map(|j| j.id)
                .collect()
        };
        for &id in &queued {
            self.finish(
                id,
                JobState::Cancelled,
                &Response::Cancelled { job: id },
                None,
            );
        }
        self.work_ready.notify_all();
        queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bo3_core::prelude::TopologySpec;

    fn tiny(name: &str) -> Box<Experiment> {
        Box::new(
            Experiment::on(TopologySpec::Complete { n: 64 })
                .named(name)
                .replicas(1)
                .seed(7),
        )
    }

    #[test]
    fn fifo_order_and_status_counts() {
        let s = Scheduler::new(Duration::from_secs(60));
        let a = s.submit(tiny("a")).unwrap();
        let b = s.submit(tiny("b")).unwrap();
        assert_eq!((a, b), (1, 2));
        assert_eq!(s.queue_depth(), 2);
        let (first, _, _) = s.claim().unwrap();
        assert_eq!(first, a);
        match s.status(None).unwrap() {
            Response::Status {
                queue_depth,
                running,
                jobs,
            } => {
                assert_eq!((queue_depth, running), (1, 1));
                assert_eq!(jobs.len(), 2);
            }
            other => panic!("unexpected status: {other:?}"),
        }
    }

    #[test]
    fn cancelling_a_queued_job_skips_it_and_notifies_subscribers() {
        let s = Scheduler::new(Duration::from_secs(60));
        let a = s.submit(tiny("a")).unwrap();
        let b = s.submit(tiny("b")).unwrap();
        let sub = s.subscribe(a).unwrap();
        s.cancel(a).unwrap();
        let rx = sub.live.expect("live channel for queued job");
        let msg = rx.recv().unwrap();
        assert!(msg.terminal);
        assert!(msg.line.contains("cancelled"));
        // The worker never sees the cancelled job.
        let (claimed, _, _) = s.claim().unwrap();
        assert_eq!(claimed, b);
    }

    #[test]
    fn unknown_jobs_are_typed_errors() {
        let s = Scheduler::new(Duration::from_secs(60));
        let err = s.cancel(99).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownJob);
        let err = s.subscribe(99).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownJob);
        let err = s.status(Some(99)).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownJob);
    }

    #[test]
    fn drain_refuses_new_work_and_cancels_the_queue() {
        let s = Scheduler::new(Duration::from_secs(60));
        let a = s.submit(tiny("a")).unwrap();
        let cancelled = s.begin_drain();
        assert_eq!(cancelled, vec![a]);
        assert!(s.claim().is_none());
        let err = s.submit(tiny("b")).unwrap_err();
        assert_eq!(err.code, ErrorCode::ShuttingDown);
        // The drained job answers late subscribers with its terminal line.
        let sub = s.subscribe(a).unwrap();
        assert!(sub.live.is_none());
        assert!(sub.backlog[0].terminal);
    }
}
