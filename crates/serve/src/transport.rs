//! The transport: accept loop, connection framing and request dispatch.
//!
//! Every connection speaks one of two things, decided by its first line:
//!
//! * **NDJSON** — one [`Request`] per line, answered with one or more
//!   [`Response`] lines (a `stream` request answers with many).  Malformed
//!   lines get a typed [`Response::Error`] and the connection stays open;
//!   the framing never panics on hostile input.
//! * **HTTP GET** — a minimal read-only surface for scrapers:
//!   `GET /metrics` (Prometheus text), `GET /metrics.json` (the registry's
//!   JSON snapshot) and `GET /status` (the job table as JSON).  One request
//!   per connection, `Connection: close` semantics.
//!
//! Reads poll with a 100 ms timeout and re-check the daemon's drain flag,
//! so a SIGTERM unblocks every connection thread within one poll interval
//! even when clients hold their sockets open.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bo3_core::configio::Json;
use bo3_core::prelude::{FromJson, Request, Response, ToJson, WireError};
use bo3_core::wire::ErrorCode;
use bo3_obs::{EventLog, Field, MetricsRegistry};

use crate::controller::ServiceMetrics;
use crate::scheduler::Scheduler;

/// Everything a connection thread needs, shared by reference count.
pub struct ServerCtx {
    /// The job table / queue.
    pub scheduler: Arc<Scheduler>,
    /// The daemon's instruments.
    pub metrics: Arc<ServiceMetrics>,
    /// The registry behind `GET /metrics`.
    pub registry: Arc<MetricsRegistry>,
    /// The daemon's event log.
    pub events: Arc<EventLog>,
    /// Raised by a wire-level `shutdown` request; the daemon's main loop
    /// polls it and triggers the same drain path as SIGTERM.
    pub shutdown_requested: Arc<AtomicBool>,
}

/// Cap on one request line (64 MiB) — large enough for any campaign the
/// bench suite ships, small enough that a hostile peer cannot balloon the
/// daemon's memory through an endless unterminated line.
const MAX_LINE_BYTES: usize = 64 << 20;

/// Reads `\n`-terminated lines off a socket with a poll-based timeout so the
/// drain flag is honoured even while idle.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    fn new(stream: TcpStream) -> Self {
        LineReader {
            stream,
            buf: Vec::new(),
        }
    }

    /// The next line (without its terminator), or `None` on EOF, oversized
    /// input, or when `stop` turns true while idle.
    fn next_line(&mut self, stop: &dyn Fn() -> bool) -> Option<String> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Some(String::from_utf8_lossy(&line).into_owned());
            }
            if self.buf.len() > MAX_LINE_BYTES {
                return None;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if stop() {
                        return None;
                    }
                }
                Err(_) => return None,
            }
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

fn respond(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    write_line(stream, &response.to_json_string())
}

fn error_response(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error(WireError::new(code, message))
}

/// Handles one accepted connection to completion.
pub fn handle_connection(stream: TcpStream, ctx: &ServerCtx) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = LineReader::new(stream);
    let stop = || ctx.scheduler.draining();
    let Some(first) = reader.next_line(&stop) else {
        return;
    };
    if first.starts_with("GET ") || first.starts_with("HEAD ") {
        serve_http(&first, &mut reader, &mut writer, ctx);
        return;
    }
    let mut line = Some(first);
    loop {
        let Some(current) = line.take().or_else(|| reader.next_line(&stop)) else {
            return;
        };
        if current.trim().is_empty() {
            continue;
        }
        if handle_request_line(current.trim(), &mut writer, ctx).is_err() {
            return; // peer hung up mid-write
        }
    }
}

fn handle_request_line(line: &str, writer: &mut TcpStream, ctx: &ServerCtx) -> io::Result<()> {
    let request = match Request::from_json_str(line) {
        Ok(req) => req,
        Err(e) => {
            return respond(
                writer,
                &error_response(ErrorCode::BadRequest, e.to_string()),
            );
        }
    };
    match request {
        Request::Submit(experiment) => {
            if let Err(e) = experiment.validate_config() {
                return respond(
                    writer,
                    &error_response(ErrorCode::InvalidConfig, e.to_string()),
                );
            }
            match ctx.scheduler.submit(experiment) {
                Ok(job) => {
                    ctx.metrics.jobs_accepted.inc();
                    ctx.metrics
                        .queue_depth
                        .set(ctx.scheduler.queue_depth() as i64);
                    ctx.events
                        .event("job_accepted", &[("job", Field::U64(job))]);
                    respond(writer, &Response::Accepted { job })
                }
                Err(e) => respond(writer, &Response::Error(e)),
            }
        }
        Request::SubmitCampaign(campaign) => {
            for cell in &campaign.cells {
                if let Err(e) = cell.validate_config() {
                    return respond(
                        writer,
                        &error_response(
                            ErrorCode::InvalidConfig,
                            format!("cell '{}': {e}", cell.name),
                        ),
                    );
                }
            }
            match ctx.scheduler.submit_campaign(*campaign) {
                Ok((name, jobs)) => {
                    ctx.metrics.jobs_accepted.add(jobs.len() as u64);
                    ctx.metrics
                        .queue_depth
                        .set(ctx.scheduler.queue_depth() as i64);
                    ctx.events.event(
                        "campaign_accepted",
                        &[
                            ("campaign", Field::Str(&name)),
                            ("cells", Field::U64(jobs.len() as u64)),
                        ],
                    );
                    respond(writer, &Response::CampaignAccepted { name, jobs })
                }
                Err(e) => respond(writer, &Response::Error(e)),
            }
        }
        Request::Status { job } => match ctx.scheduler.status(job) {
            Ok(status) => respond(writer, &status),
            Err(e) => respond(writer, &Response::Error(e)),
        },
        Request::Stream { job } => serve_stream(job, writer, ctx),
        Request::Cancel { job } => match ctx.scheduler.cancel(job) {
            Ok(()) => respond(writer, &Response::Ok),
            Err(e) => respond(writer, &Response::Error(e)),
        },
        Request::Metrics => {
            let snapshot = Json::parse(&ctx.registry.snapshot_json()).unwrap_or(Json::Null);
            respond(writer, &Response::Metrics { snapshot })
        }
        Request::Ping => respond(writer, &Response::Pong),
        Request::Shutdown => {
            ctx.shutdown_requested.store(true, Ordering::SeqCst);
            respond(writer, &Response::Ok)
        }
    }
}

/// Streams a job: forwards every published line until the terminal one.
fn serve_stream(job: u64, writer: &mut TcpStream, ctx: &ServerCtx) -> io::Result<()> {
    let subscription = match ctx.scheduler.subscribe(job) {
        Ok(s) => s,
        Err(e) => return respond(writer, &Response::Error(e)),
    };
    for msg in &subscription.backlog {
        write_line(writer, &msg.line)?;
        if msg.terminal {
            return Ok(());
        }
    }
    let Some(rx) = subscription.live else {
        return Ok(());
    };
    // Every job reaches a terminal line — a drain cancels queued and
    // running jobs alike — so this loop always ends; the idle guard only
    // covers a scheduler that was torn down under us.
    let mut idle_polls = 0u32;
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(msg) => {
                idle_polls = 0;
                write_line(writer, &msg.line)?;
                if msg.terminal {
                    return Ok(());
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if ctx.scheduler.draining() {
                    idle_polls += 1;
                    if idle_polls > 50 {
                        return Ok(());
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

/// Minimal HTTP/1.0-style answers for scrapers; one request per connection.
fn serve_http(
    request_line: &str,
    reader: &mut LineReader,
    writer: &mut TcpStream,
    ctx: &ServerCtx,
) {
    // Drain the header block so well-behaved clients see a clean close.
    let stop = || ctx.scheduler.draining();
    while let Some(header) = reader.next_line(&stop) {
        if header.trim().is_empty() {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            ctx.registry.render_prometheus(),
        ),
        "/metrics.json" => ("200 OK", "application/json", ctx.registry.snapshot_json()),
        "/status" => (
            "200 OK",
            "application/json",
            ctx.scheduler
                .status(None)
                .map(|s| s.to_json_string())
                .unwrap_or_else(|e| Response::Error(e).to_json_string()),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            format!("no such path: {path}\n"),
        ),
    };
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = writer.write_all(head.as_bytes());
    let _ = writer.write_all(body.as_bytes());
    let _ = writer.flush();
}

/// The accept loop: non-blocking accept polled against the drain flag; one
/// thread per connection, handles parked in `connections` so the drain can
/// join them.
pub fn accept_loop(
    listener: TcpListener,
    ctx: Arc<ServerCtx>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    loop {
        if ctx.scheduler.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let ctx = Arc::clone(&ctx);
                let handle = std::thread::spawn(move || handle_connection(stream, &ctx));
                connections
                    .lock()
                    .expect("connection registry")
                    .push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}
