//! Exact binomial probabilities and the majority functions at the heart of
//! the Best-of-k update rule.
//!
//! A vertex running Best-of-k samples `k` neighbours with replacement; if the
//! probability that a single sample is blue is `p`, the number of blue
//! samples is `Bin(k, p)` and the vertex turns blue exactly when a strict
//! majority of the samples is blue (for odd `k`; for even `k` the tie rule
//! matters and both conventions are provided).

/// Binomial coefficient `C(n, k)` as `f64` (exact for the small `n` used by
/// the dynamics; saturates gracefully for large `n`).
pub fn binomial_coefficient(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut result = 1.0f64;
    for i in 0..k {
        result *= (n - i) as f64;
        result /= (i + 1) as f64;
    }
    result
}

/// Probability mass function of `Bin(n, p)` at `k`.
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if k > n {
        return 0.0;
    }
    binomial_coefficient(n, k) * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32)
}

/// `P(Bin(n, p) >= k)`.
pub fn binomial_tail_geq(n: u64, k: u64, p: f64) -> f64 {
    (k..=n).map(|j| binomial_pmf(n, j, p)).sum()
}

/// `P(Bin(n, p) <= k)`.
pub fn binomial_cdf(n: u64, k: u64, p: f64) -> f64 {
    (0..=k.min(n)).map(|j| binomial_pmf(n, j, p)).sum()
}

/// Probability that a Best-of-3 vertex adopts blue when each sample is blue
/// independently with probability `p`: `P(Bin(3,p) >= 2) = 3p² − 2p³`.
///
/// This is the map iterated by the paper's equation (1).
pub fn best_of_three_blue(p: f64) -> f64 {
    3.0 * p * p - 2.0 * p * p * p
}

/// Probability that a Best-of-k vertex (odd `k`) adopts blue:
/// `P(Bin(k, p) ≥ (k+1)/2)`.
pub fn best_of_k_blue_odd(k: u64, p: f64) -> f64 {
    assert!(k % 2 == 1, "best_of_k_blue_odd requires odd k, got {k}");
    binomial_tail_geq(k, k / 2 + 1, p)
}

/// Probability that a Best-of-2 vertex adopts blue when its current opinion
/// is blue with probability `q_self` and ties are kept:
/// blue ⇔ both samples blue, or a tie (one each) and the vertex was blue.
pub fn best_of_two_blue_keep(p: f64, q_self: f64) -> f64 {
    p * p + 2.0 * p * (1.0 - p) * q_self
}

/// Probability that a Best-of-2 vertex adopts blue when ties are broken by a
/// fair coin.
pub fn best_of_two_blue_random(p: f64) -> f64 {
    p * p + 2.0 * p * (1.0 - p) * 0.5
}

/// Chernoff upper bound on `P(Bin(n, p) ≥ a)` for `a > np`, via the standard
/// relative-entropy form `exp(−n·KL(a/n ‖ p))`.
pub fn chernoff_upper_tail(n: u64, p: f64, a: f64) -> f64 {
    let n_f = n as f64;
    if a <= n_f * p {
        return 1.0;
    }
    if a >= n_f {
        return if p >= 1.0 { 1.0 } else { p.powi(n as i32) };
    }
    let x = a / n_f;
    let kl = x * (x / p).ln() + (1.0 - x) * ((1.0 - x) / (1.0 - p)).ln();
    (-n_f * kl).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn binomial_coefficients() {
        assert_eq!(binomial_coefficient(3, 0), 1.0);
        assert_eq!(binomial_coefficient(3, 1), 3.0);
        assert_eq!(binomial_coefficient(3, 2), 3.0);
        assert_eq!(binomial_coefficient(3, 3), 1.0);
        assert_eq!(binomial_coefficient(3, 4), 0.0);
        assert_eq!(binomial_coefficient(10, 5), 252.0);
        assert_eq!(binomial_coefficient(52, 5), 2_598_960.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &p in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            let total: f64 = (0..=7).map(|k| binomial_pmf(7, k, p)).sum();
            assert!(close(total, 1.0, 1e-12), "p = {p}, total = {total}");
        }
    }

    #[test]
    fn pmf_handles_bad_input() {
        assert!(binomial_pmf(3, 1, -0.1).is_nan());
        assert!(binomial_pmf(3, 1, 1.1).is_nan());
        assert_eq!(binomial_pmf(3, 5, 0.4), 0.0);
    }

    #[test]
    fn tail_and_cdf_are_complementary() {
        for k in 0..=6u64 {
            let tail = binomial_tail_geq(6, k, 0.3);
            let cdf = if k == 0 {
                0.0
            } else {
                binomial_cdf(6, k - 1, 0.3)
            };
            assert!(close(tail + cdf, 1.0, 1e-12), "k = {k}");
        }
    }

    #[test]
    fn best_of_three_matches_direct_formula() {
        for &p in &[0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
            let direct = binomial_tail_geq(3, 2, p);
            assert!(close(best_of_three_blue(p), direct, 1e-12), "p = {p}");
        }
    }

    #[test]
    fn best_of_three_fixed_points() {
        // The map 3p²−2p³ has fixed points 0, 1/2, 1.
        assert!(close(best_of_three_blue(0.0), 0.0, 1e-15));
        assert!(close(best_of_three_blue(0.5), 0.5, 1e-15));
        assert!(close(best_of_three_blue(1.0), 1.0, 1e-15));
    }

    #[test]
    fn best_of_three_amplifies_minority_decay() {
        // Below 1/2 the map strictly decreases the blue probability.
        for &p in &[0.49, 0.4, 0.3, 0.2, 0.1, 0.01] {
            assert!(best_of_three_blue(p) < p, "p = {p}");
        }
        // Above 1/2 it increases.
        for &p in &[0.51, 0.6, 0.8, 0.99] {
            assert!(best_of_three_blue(p) > p, "p = {p}");
        }
    }

    #[test]
    fn best_of_k_odd_reduces_to_best_of_three() {
        for &p in &[0.2, 0.5, 0.7] {
            assert!(close(
                best_of_k_blue_odd(3, p),
                best_of_three_blue(p),
                1e-12
            ));
        }
    }

    #[test]
    fn best_of_k_larger_k_is_sharper() {
        // For p < 1/2, larger odd k suppresses blue faster.
        let p = 0.4;
        let k3 = best_of_k_blue_odd(3, p);
        let k5 = best_of_k_blue_odd(5, p);
        let k9 = best_of_k_blue_odd(9, p);
        assert!(k5 < k3);
        assert!(k9 < k5);
    }

    #[test]
    #[should_panic(expected = "odd k")]
    fn best_of_k_odd_rejects_even_k() {
        best_of_k_blue_odd(4, 0.3);
    }

    #[test]
    fn best_of_two_variants() {
        // With q_self = 1 (vertex already blue) keeping ties is more blue-friendly
        // than random tie-breaking; with q_self = 0 it is less.
        let p = 0.3;
        assert!(best_of_two_blue_keep(p, 1.0) > best_of_two_blue_random(p));
        assert!(best_of_two_blue_keep(p, 0.0) < best_of_two_blue_random(p));
        // Random tie-breaking for k=2 coincides with the voter model: p² + p(1−p) = p.
        assert!(close(best_of_two_blue_random(p), p, 1e-12));
    }

    #[test]
    fn chernoff_bound_dominates_exact_tail() {
        let n = 50u64;
        let p = 0.3;
        for a in [20.0, 25.0, 30.0, 40.0] {
            let exact = binomial_tail_geq(n, a as u64, p);
            let bound = chernoff_upper_tail(n, p, a);
            assert!(
                bound + 1e-12 >= exact,
                "a = {a}: bound {bound} < exact {exact}"
            );
        }
    }

    #[test]
    fn chernoff_bound_edge_cases() {
        assert_eq!(chernoff_upper_tail(10, 0.5, 1.0), 1.0); // below the mean
        let at_n = chernoff_upper_tail(10, 0.5, 10.0);
        assert!(close(at_n, 0.5f64.powi(10), 1e-15));
    }
}
