//! Tail bounds from the upper-level analysis (Section 4, Lemmas 5–7).
//!
//! Section 4 shows that once the blue probability at level `T′` is `o(1/d)`,
//! the root is red w.h.p. because (a) levels rarely involve collisions
//! (Lemma 7's `Bin(h, 9^h/d)` domination), and (b) a ternary tree needs at
//! least `2^h` blue leaves for a blue root (Lemma 5), while Lemma 6 converts
//! any DAG into such a tree at the cost of doubling the blue leaves once per
//! collision level.

use crate::binomial::{binomial_coefficient, binomial_tail_geq};

/// Lemma 5: the minimum number of blue leaves a ternary tree of `h + 1`
/// levels needs for its root to be blue, namely `2^h`.
pub fn min_blue_leaves_for_blue_root(h: u32) -> f64 {
    2f64.powi(h as i32)
}

/// The per-level collision probability bound used in Lemma 7: with at most
/// `m_i ≤ 3^{h−i}` vertices at level `i`, the probability that level `i`
/// involves at least one collision is at most `m_i² / d ≤ 9^h / d` (clamped
/// to 1).
pub fn level_collision_probability_bound(vertices_at_level: f64, d: f64) -> f64 {
    ((vertices_at_level * vertices_at_level) / d).min(1.0)
}

/// Lemma 7's bound on the number of collision levels: `C` is stochastically
/// dominated by `Bin(h, 9^h/d)`; this returns the union-bound estimate of
/// `P(C > h/2)` from equation (7): `(2e·9^h/d)^{h/2}` (clamped to 1).
pub fn many_collision_levels_probability(h: u32, d: f64) -> f64 {
    let nine_h = 9f64.powi(h as i32);
    let base = 2.0 * std::f64::consts::E * nine_h / d;
    if base >= 1.0 {
        return 1.0;
    }
    base.powf(h as f64 / 2.0)
}

/// Exact tail `P(Bin(h, q) ≥ k)` of the dominating binomial in Lemma 7, for
/// cross-checking the union bound above against the true dominating law.
pub fn collision_levels_tail_exact(h: u32, d: f64, k: u32) -> f64 {
    let q = (9f64.powi(h as i32) / d).min(1.0);
    binomial_tail_geq(h as u64, k as u64, q)
}

/// The second term of inequality (6): the probability that at least `2^{h/2}`
/// of the (at most `3^h`) leaves are blue when each is blue with probability
/// at most `3^h / d` — bounded in the paper by `(2e·9^h/(d·h))^{h/2}`
/// (clamped to 1).
pub fn many_blue_leaves_probability(h: u32, d: f64) -> f64 {
    let nine_h = 9f64.powi(h as i32);
    let base = 2.0 * std::f64::consts::E * nine_h / (d * h as f64);
    if base >= 1.0 {
        return 1.0;
    }
    base.powf(h as f64 / 2.0)
}

/// The combined Lemma 7 statement: an upper bound on the probability that the
/// root of an `h+1`-level voting-DAG is blue, given that each leaf is blue
/// with probability at most `leaf_blue_prob` (which the lower-level analysis
/// makes `o(1/d)`).
///
/// The bound is `P(C > h/2) + P(B ≥ 2^{h/2})` as in inequality (6), where the
/// second term uses the exact binomial tail with `3^h` leaves.
pub fn root_blue_probability_bound(h: u32, d: f64, leaf_blue_prob: f64) -> f64 {
    let collisions = many_collision_levels_probability(h, d);
    let leaves = 3f64.powi(h as i32);
    let threshold = 2f64.powf(h as f64 / 2.0);
    // Union-style bound on P(B >= threshold) via the Chernoff-like sum the
    // paper uses: sum_{k >= threshold} C(3^h, k) p^k <= (3^h e p / k)^k summed.
    let blue_tail = union_tail_bound(leaves, leaf_blue_prob, threshold);
    (collisions + blue_tail).min(1.0)
}

/// The generic union-bound tail `P(Bin(N, p) ≥ k₀) ≤ Σ_{k≥k₀} (N e p / k)^k`
/// that the paper uses twice in Lemma 7; evaluated by summing a geometric
/// majorant starting at `k₀`.
pub fn union_tail_bound(n_trials: f64, p: f64, k0: f64) -> f64 {
    if k0 <= 0.0 {
        return 1.0;
    }
    if p <= 0.0 {
        return 0.0;
    }
    let ratio = n_trials * std::f64::consts::E * p / k0;
    if ratio >= 1.0 {
        return 1.0;
    }
    // Σ_{k ≥ k0} ratio^k ≤ ratio^{k0} / (1 − ratio).
    (ratio.powf(k0) / (1.0 - ratio)).min(1.0)
}

/// Lemma 6 bookkeeping: the maximum number of blue leaves after transforming
/// a DAG with `b0` blue leaves and `c` collision levels into a ternary tree,
/// namely `b0 · 2^c`.
pub fn transformed_blue_leaves(b0: f64, c: u32) -> f64 {
    b0 * 2f64.powi(c as i32)
}

/// Lemma 7's sufficient condition `2e·9^h ≤ d^b` for some `b < 1`, expressed
/// as the largest exponent `b` it holds for (or `None` when it fails for all
/// `b > 0`), with `h = a·log log₂ d` as in the paper's claim.
pub fn collision_exponent(a: f64, d: f64) -> Option<f64> {
    if d <= 2.0 {
        return None;
    }
    let h = a * d.log2().ln();
    let lhs = (2.0 * std::f64::consts::E).ln() + h * 9f64.ln();
    let b = 1.0 - lhs / d.ln();
    if b > 0.0 {
        Some(b)
    } else {
        None
    }
}

/// Sanity helper for experiments: the paper's requirement that
/// `P(C > h/2) = o(n^{-1})`, evaluated concretely as
/// `many_collision_levels_probability(h, d) < 1/n`.
pub fn upper_level_bound_beats_union(h: u32, d: f64, n: f64) -> bool {
    many_collision_levels_probability(h, d) < 1.0 / n
}

#[allow(dead_code)]
fn unused_binomial_coefficient_reference() -> f64 {
    // Keeps the dependency explicit for readers looking for the exact-tail
    // variant; the exact tail lives in `collision_levels_tail_exact`.
    binomial_coefficient(3, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma5_thresholds() {
        assert_eq!(min_blue_leaves_for_blue_root(0), 1.0);
        assert_eq!(min_blue_leaves_for_blue_root(1), 2.0);
        assert_eq!(min_blue_leaves_for_blue_root(10), 1024.0);
    }

    #[test]
    fn level_collision_bound_clamps() {
        assert_eq!(level_collision_probability_bound(100.0, 10.0), 1.0);
        assert!((level_collision_probability_bound(3.0, 900.0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn collision_levels_bound_is_small_for_dense_graphs() {
        // h = 6, d = 1e9: 9^6 ≈ 5.3e5, so 2e·9^h/d ≈ 2.9e-3 and the bound is tiny.
        let p = many_collision_levels_probability(6, 1e9);
        assert!(p < 1e-7, "bound {p}");
        // Sparse graph: bound degenerates to 1.
        assert_eq!(many_collision_levels_probability(6, 10.0), 1.0);
    }

    #[test]
    fn union_bound_dominates_exact_binomial_tail() {
        let h = 8u32;
        let d = 1e9;
        let union = many_collision_levels_probability(h, d);
        let exact = collision_levels_tail_exact(h, d, h / 2 + 1);
        assert!(union + 1e-18 >= exact, "union {union} < exact {exact}");
    }

    #[test]
    fn blue_leaves_bound_behaviour() {
        assert!(many_blue_leaves_probability(6, 1e9) < 1e-7);
        assert_eq!(many_blue_leaves_probability(6, 5.0), 1.0);
    }

    #[test]
    fn root_blue_bound_is_small_in_the_paper_regime() {
        // The Lemma 7 constants need d ≫ 9^h: with d = 1e9 and h = 5 the
        // collision factor 2e·9^5/d ≈ 3e-4 and the bound is tiny.
        let d = 1e9;
        let bound = root_blue_probability_bound(5, d, 1.0 / (d * 10.0));
        assert!(bound < 1e-2, "bound {bound}");
        // And it degrades gracefully when the leaf probability is large.
        let loose = root_blue_probability_bound(5, d, 0.3);
        assert!(loose >= bound);
    }

    #[test]
    fn union_tail_bound_edge_cases() {
        assert_eq!(union_tail_bound(100.0, 0.0, 5.0), 0.0);
        assert_eq!(union_tail_bound(100.0, 0.5, 0.0), 1.0);
        assert_eq!(union_tail_bound(100.0, 0.9, 10.0), 1.0); // ratio >= 1
        let small = union_tail_bound(100.0, 1e-6, 10.0);
        assert!(small < 1e-40);
    }

    #[test]
    fn lemma6_doubling() {
        assert_eq!(transformed_blue_leaves(3.0, 0), 3.0);
        assert_eq!(transformed_blue_leaves(3.0, 4), 48.0);
        assert_eq!(transformed_blue_leaves(0.0, 10), 0.0);
    }

    #[test]
    fn collision_exponent_exists_for_dense_d() {
        // For d = n^α with sizeable α and a = 1, b should be comfortably positive.
        let b = collision_exponent(1.0, 1e8).unwrap();
        assert!(b > 0.3, "b = {b}");
        // For tiny d no exponent works.
        assert!(collision_exponent(1.0, 2.0).is_none());
        assert!(collision_exponent(5.0, 50.0).is_none());
    }

    #[test]
    fn upper_level_bound_check_matches_theorem_regime() {
        // The explicit constants in (7)–(9) only beat 1/n for very large n:
        // with n ≈ 2e13 and d = n^0.9 ≈ 1e12 the bound at h = 6 is ≈ 2e-17.
        let n = 2e13f64;
        assert!(upper_level_bound_beats_union(6, 1e12, n));
        // A sparse degree fails by a wide margin.
        assert!(!upper_level_bound_beats_union(6, 1e3, n));
    }
}
