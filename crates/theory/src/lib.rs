//! # bo3-theory
//!
//! The numerical side of the analysis in *“Best-of-Three Voting on Dense
//! Graphs”* (Kang & Rivera, SPAA 2019): every recursion, phase length and
//! tail bound that appears in the proof of Theorem 1, implemented as plain
//! functions over `f64` so experiments can print a *paper* column next to the
//! simulator's *measured* column.
//!
//! * [`binomial`] — exact binomial probabilities and the Best-of-k majority
//!   maps (`3p² − 2p³` and friends);
//! * [`recursion`] — equations (1), (2) and (4): the ideal ternary-tree
//!   recursion, the Sprinkling upper bound with its collision term
//!   `ε_t = 3^{T−t+1}/d`, and the bias lower bound;
//! * [`phases`] — the three-phase decomposition of Lemma 4 with its explicit
//!   lengths `T₃ = O(log δ⁻¹)`, `T₂ = O(log log d)`, plus the upper-level
//!   height `h = a log log d`;
//! * [`bounds`] — Lemmas 5–7: blue-leaf thresholds for ternary trees,
//!   collision-level tail bounds, and the resulting `o(1/n)` bound on a blue
//!   root;
//! * [`prediction`] — everything composed into a per-parameter-point
//!   [`prediction::Prediction`] consumed by the benchmark harness;
//! * [`sbm`] — mean-field polarisation thresholds on two-block SBMs
//!   (Shimizu–Shiraga): the pitchfork at `p_in/p_out = 5` that the e18
//!   phase-surface campaign measures against.
//!
//! ```
//! use bo3_theory::prediction::predict;
//!
//! let p = predict(1e6, 0.8, 0.05, 2.0);
//! assert!(p.in_theorem_regime);
//! assert!(p.predicted_rounds.unwrap() < 60);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod binomial;
pub mod bounds;
pub mod phases;
pub mod prediction;
pub mod recursion;
pub mod sbm;
