//! The three-phase decomposition of Lemma 4.
//!
//! Lemma 4 shows that the voting-DAG of height
//! `T = ⌊a log log d⌋ + 1 + T₂ + T₃` drives the blue probability from
//! `1/2 − δ` down to `o(1/d)` by splitting the levels into three phases:
//!
//! * **Phase i** (length `T₃ = O(log δ⁻¹)`): the red bias grows
//!   geometrically, `δ_t ≥ (5/4) δ_{t−1}`, until `δ_t ≥ 1/(2√3)`;
//! * **Phase ii** (length `T₂ = O(log log d)`): the blue probability decays
//!   quadratically, `p_t ≤ 4 p_{t−1}²`, until `p_t ≤ 12 ε_t = polylog(d)/d`;
//! * **Phase iii** (a single step): one more application of equation (2)
//!   squares `polylog(d)/d` into `o(1/d)`.
//!
//! These lengths, with the paper's explicit constants, are exactly what
//! [`PhasePlan`] computes; the experiment E11 compares them against the
//! phases observed in simulation.

use serde::{Deserialize, Serialize};

use crate::recursion::{delta_step_lower_bound, quadratic_decay_step};

/// The bias threshold `1/(2√3)` at which phase i hands over to phase ii.
pub fn phase_one_bias_target() -> f64 {
    1.0 / (2.0 * 3f64.sqrt())
}

/// Planned phase lengths for a graph of minimum degree `d` and initial bias `δ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasePlan {
    /// Minimum degree `d` of the target graph.
    pub d: f64,
    /// Initial red bias `δ` (initial blue probability is `1/2 − δ`).
    pub delta: f64,
    /// Length of phase i: bias amplification at rate ≥ 5/4 (`O(log δ⁻¹)`).
    pub t3_bias_amplification: usize,
    /// Length of phase ii: quadratic decay of the blue probability (`O(log log d)`).
    pub t2_quadratic_decay: usize,
    /// Length of phase iii: the final squaring step (always 1 in the paper).
    pub t1_final_step: usize,
    /// The extra `⌊a log log d⌋` levels consumed by the upper-level analysis
    /// (Section 4), with the paper's `h = a log log d`.
    pub upper_levels: usize,
}

impl PhasePlan {
    /// Total voting-DAG height `T` required by the plan.
    pub fn total_levels(&self) -> usize {
        self.t3_bias_amplification
            + self.t2_quadratic_decay
            + self.t1_final_step
            + self.upper_levels
    }

    /// The level `T'` splitting the lower-level analysis (Section 3) from the
    /// upper-level analysis (Section 4): everything except the upper levels.
    pub fn lower_levels(&self) -> usize {
        self.t3_bias_amplification + self.t2_quadratic_decay + self.t1_final_step
    }
}

/// Computes the phase lengths exactly as in the proof of Lemma 4.
///
/// `a` is the constant in the upper-level height `h = ⌊a log log d⌋`
/// (Lemma 7 needs `a` large enough relative to `α`; `a = 2` suffices for all
/// the experiments here).  Returns `None` for degenerate inputs
/// (`d ≤ e`, `δ ≤ 0`, or `δ ≥ 1/2`).
pub fn phase_plan(d: f64, delta: f64, a: f64) -> Option<PhasePlan> {
    // NaN inputs fail the positive comparisons and are rejected too.
    let inputs_valid = d > std::f64::consts::E && delta > 0.0 && delta < 0.5 && a > 0.0;
    if !inputs_valid {
        return None;
    }
    let target = phase_one_bias_target();

    // Phase i: iterate equation (4) with a conservative epsilon of 0 (the
    // paper shows ε ≪ δ throughout this phase) and count the steps to reach
    // the bias target. The paper caps this phase at C log δ⁻¹.
    let cap_t3 = (10.0 / (1.25f64).ln() * (1.0 / delta).ln()).ceil() as usize + 1;
    let mut t3 = 0usize;
    let mut bias = delta;
    while bias < target && t3 < cap_t3 {
        bias = delta_step_lower_bound(bias, 0.0);
        t3 += 1;
    }

    // Phase ii: starting from p = 1/2 − 1/(2√3), iterate p ← 4p² until
    // p ≤ polylog(d)/d, capped at 2 log₂ log d as in the paper.
    let loglog_d = d.ln().ln();
    let cap_t2 = (2.0 * loglog_d / 2f64.ln()).ceil() as usize + 1;
    let stop = (loglog_d.powi(3) / d).min(1.0); // a stand-in for 12·ε_{T₂} = polylog(d)/d
    let mut t2 = 0usize;
    let mut p = 0.5 - target;
    while p > stop && t2 < cap_t2 {
        p = quadratic_decay_step(p);
        t2 += 1;
    }

    let upper = (a * loglog_d).floor().max(1.0) as usize;

    Some(PhasePlan {
        d,
        delta,
        t3_bias_amplification: t3,
        t2_quadratic_decay: t2,
        t1_final_step: 1,
        upper_levels: upper,
    })
}

/// The paper's headline prediction: consensus within
/// `O(log log n) + O(log δ⁻¹)` rounds.  This helper evaluates the concrete
/// (constant-bearing) version used to size the experiments:
/// `T(n, α, δ) = total_levels` of the [`phase_plan`] with `d = n^α`.
pub fn predicted_consensus_rounds(n: f64, alpha: f64, delta: f64, a: f64) -> Option<usize> {
    let inputs_valid = n > 1.0 && alpha > 0.0;
    if !inputs_valid {
        return None;
    }
    let d = n.powf(alpha);
    phase_plan(d, delta, a).map(|p| p.total_levels())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_target_value() {
        assert!((phase_one_bias_target() - 0.288_675_134_594_812_9).abs() < 1e-12);
    }

    #[test]
    fn phase_plan_rejects_degenerate_inputs() {
        assert!(phase_plan(2.0, 0.1, 2.0).is_none()); // d too small
        assert!(phase_plan(1e4, 0.0, 2.0).is_none()); // zero bias
        assert!(phase_plan(1e4, 0.6, 2.0).is_none()); // bias above 1/2
        assert!(phase_plan(1e4, 0.1, 0.0).is_none()); // non-positive a
    }

    #[test]
    fn phase_lengths_scale_as_the_paper_says() {
        // T3 grows logarithmically in 1/δ.
        let p1 = phase_plan(1e6, 0.1, 2.0).unwrap();
        let p2 = phase_plan(1e6, 0.01, 2.0).unwrap();
        let p3 = phase_plan(1e6, 0.001, 2.0).unwrap();
        assert!(p2.t3_bias_amplification > p1.t3_bias_amplification);
        assert!(p3.t3_bias_amplification > p2.t3_bias_amplification);
        let growth_12 = p2.t3_bias_amplification - p1.t3_bias_amplification;
        let growth_23 = p3.t3_bias_amplification - p2.t3_bias_amplification;
        // Each factor-10 reduction in δ costs about the same number of extra
        // steps (logarithmic dependence).
        assert!((growth_12 as i64 - growth_23 as i64).abs() <= 2);

        // T2 grows (very slowly) with d and is O(log log d).
        let q1 = phase_plan(1e4, 0.1, 2.0).unwrap();
        let q2 = phase_plan(1e12, 0.1, 2.0).unwrap();
        assert!(q2.t2_quadratic_decay >= q1.t2_quadratic_decay);
        assert!(q2.t2_quadratic_decay <= q1.t2_quadratic_decay + 4);
        assert!(q2.t2_quadratic_decay <= 12);
    }

    #[test]
    fn phase_plan_totals_are_consistent() {
        let p = phase_plan(1e8, 0.05, 2.0).unwrap();
        assert_eq!(
            p.total_levels(),
            p.t3_bias_amplification + p.t2_quadratic_decay + 1 + p.upper_levels
        );
        assert_eq!(p.lower_levels() + p.upper_levels, p.total_levels());
        assert_eq!(p.t1_final_step, 1);
        assert!(p.upper_levels >= 1);
    }

    #[test]
    fn predicted_rounds_grow_slowly_with_n() {
        // Doubling log n barely changes the prediction (log log growth).
        let r1 = predicted_consensus_rounds(1e4, 0.8, 0.05, 2.0).unwrap();
        let r2 = predicted_consensus_rounds(1e8, 0.8, 0.05, 2.0).unwrap();
        let r3 = predicted_consensus_rounds(1e16, 0.8, 0.05, 2.0).unwrap();
        assert!(r2 >= r1);
        assert!(r3 >= r2);
        assert!(r3 - r1 <= 6, "r1={r1}, r3={r3}");
    }

    #[test]
    fn predicted_rounds_reject_bad_inputs() {
        assert!(predicted_consensus_rounds(0.5, 0.8, 0.05, 2.0).is_none());
        assert!(predicted_consensus_rounds(1e6, 0.0, 0.05, 2.0).is_none());
    }

    #[test]
    fn phase_one_reaches_target_bias() {
        // Simulate the lower-bound recursion for the planned number of steps
        // and check the bias target is actually reached.
        let plan = phase_plan(1e9, 0.01, 2.0).unwrap();
        let mut bias = 0.01;
        for _ in 0..plan.t3_bias_amplification {
            bias = delta_step_lower_bound(bias, 0.0);
        }
        assert!(bias >= phase_one_bias_target());
    }
}
