//! End-to-end theoretical predictions packaged for comparison against
//! simulation results.
//!
//! Every experiment in `EXPERIMENTS.md` reports a *paper* column produced by
//! these functions next to the *measured* column produced by the simulator,
//! so the comparison logic lives in one place.

use serde::{Deserialize, Serialize};

use crate::bounds::root_blue_probability_bound;
use crate::phases::{phase_plan, PhasePlan};
use crate::recursion::{ideal_steps_to_reach, sprinkling_trajectory};

/// A complete prediction for one parameter point `(n, α, δ)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Number of vertices.
    pub n: f64,
    /// Degree exponent (`d = n^α`).
    pub alpha: f64,
    /// Minimum degree `d = n^α`.
    pub d: f64,
    /// Initial red bias `δ`.
    pub delta: f64,
    /// Whether the parameter point satisfies Theorem 1's hypotheses
    /// (`α = Ω(1/ log log n)` with constant 1, and `δ ≥ (log d)^{−C}` with `C = 3`).
    pub in_theorem_regime: bool,
    /// The phase decomposition of Lemma 4, when defined.
    pub phases: Option<PhasePlan>,
    /// Consensus-round prediction `T = O(log log n) + O(log δ⁻¹)` with the
    /// proof's constants (total voting-DAG height).
    pub predicted_rounds: Option<usize>,
    /// The idealised (complete-graph, equation (1)) number of rounds to push
    /// the blue probability below `1/n` — a lower-bound-flavoured reference.
    pub ideal_rounds: Option<usize>,
    /// Upper bound on the probability that a fixed vertex ends blue, from the
    /// Sprinkling trajectory composed with the Lemma 7 bound.
    pub single_vertex_blue_bound: f64,
}

/// Computes the full prediction for `(n, alpha, delta)` using upper-level
/// constant `a` (see [`phase_plan`]).
pub fn predict(n: f64, alpha: f64, delta: f64, a: f64) -> Prediction {
    let d = n.powf(alpha);
    let loglog_n = if n > std::f64::consts::E {
        n.ln().ln()
    } else {
        0.0
    };
    let regime_alpha = loglog_n > 0.0 && alpha >= 1.0 / loglog_n;
    let regime_delta = d > 1.0 && delta > 0.0 && delta >= d.ln().powf(-3.0);
    let in_theorem_regime = regime_alpha && regime_delta && delta < 0.5;

    let phases = phase_plan(d, delta, a);
    let predicted_rounds = phases.as_ref().map(|p| p.total_levels());
    let ideal_rounds = if n > 1.0 {
        ideal_steps_to_reach(0.5 - delta, 1.0 / n, 10_000)
    } else {
        None
    };

    let single_vertex_blue_bound = match &phases {
        None => 1.0,
        Some(plan) => {
            let lower = sprinkling_trajectory(delta, plan.lower_levels(), d);
            let leaf_prob = *lower.p.last().unwrap_or(&1.0);
            root_blue_probability_bound(plan.upper_levels as u32, d, leaf_prob)
        }
    };

    Prediction {
        n,
        alpha,
        d,
        delta,
        in_theorem_regime,
        phases,
        predicted_rounds,
        ideal_rounds,
        single_vertex_blue_bound,
    }
}

/// Convenience wrapper: the probability (upper bound) that *any* vertex is
/// still blue after the predicted number of rounds, by a union bound over the
/// `n` vertices.
pub fn all_red_failure_bound(pred: &Prediction) -> f64 {
    (pred.n * pred.single_vertex_blue_bound).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_regime_is_recognised() {
        let p = predict(1e6, 0.8, 0.05, 2.0);
        assert!(p.in_theorem_regime);
        assert!(p.predicted_rounds.is_some());
        assert!(p.ideal_rounds.is_some());
        assert!((p.d - 1e6f64.powf(0.8)).abs() < 1e-6);
    }

    #[test]
    fn sparse_regime_is_rejected() {
        // alpha far below 1/log log n.
        let p = predict(1e6, 0.01, 0.05, 2.0);
        assert!(!p.in_theorem_regime);
    }

    #[test]
    fn tiny_delta_is_rejected() {
        // delta below (log d)^{-3}.
        let p = predict(1e6, 0.8, 1e-9, 2.0);
        assert!(!p.in_theorem_regime);
        // but the prediction machinery still runs
        assert!(p.predicted_rounds.is_some());
    }

    #[test]
    fn majority_start_is_rejected() {
        let p = predict(1e6, 0.8, 0.6, 2.0);
        assert!(!p.in_theorem_regime);
        assert!(p.phases.is_none());
    }

    #[test]
    fn predicted_rounds_dominate_ideal_rounds() {
        // The proof's constant-bearing bound is necessarily more conservative
        // than the idealised recursion.
        let p = predict(1e5, 0.9, 0.1, 2.0);
        assert!(p.predicted_rounds.unwrap() >= p.ideal_rounds.unwrap());
    }

    #[test]
    fn blue_bound_is_small_in_regime_and_union_bound_works() {
        // The proof's explicit constants become non-vacuous only for very
        // dense instances; n = 1e12 with alpha = 0.95 is such a point.
        let p = predict(1e12, 0.95, 0.1, 2.0);
        assert!(p.in_theorem_regime);
        assert!(
            p.single_vertex_blue_bound < 1e-7,
            "bound {}",
            p.single_vertex_blue_bound
        );
        assert!(all_red_failure_bound(&p) < 1e-1);
    }

    #[test]
    fn blue_bound_degrades_outside_regime() {
        let sparse = predict(1e6, 0.05, 0.1, 2.0);
        assert!(sparse.single_vertex_blue_bound > 0.01);
    }

    #[test]
    fn rounds_grow_with_shrinking_delta_but_slowly_with_n() {
        let a = predict(1e6, 0.8, 0.1, 2.0).predicted_rounds.unwrap();
        let b = predict(1e6, 0.8, 0.001, 2.0).predicted_rounds.unwrap();
        assert!(b > a);
        let c = predict(1e12, 0.8, 0.1, 2.0).predicted_rounds.unwrap();
        assert!(c >= a);
        assert!(c - a <= 6);
    }
}
