//! The three recursions that drive the paper's analysis.
//!
//! * Equation (1): the idealised ternary-tree recursion
//!   `b_t = 3b_{t−1}² − 2b_{t−1}³` describing the blue probability when the
//!   voting-DAG is a ternary tree (no collisions);
//! * Equation (2): the Sprinkling recursion
//!   `p_t ≤ (3p² − 2p³) + 6pε + 3ε² + ε³` with `ε_{t−1} = 3^{T−t+1}/d`,
//!   which charges every collision as an adversarially blue vertex;
//! * Equation (4): the lower-bound recursion on the red bias
//!   `δ_t ≥ δ_{t−1} + (δ_{t−1}/2 − 2δ_{t−1}³ − 4ε_{t−1})` used in phase (i)
//!   of Lemma 4 to show the bias multiplies by ≥ 5/4 each step.

use serde::{Deserialize, Serialize};

use crate::binomial::best_of_three_blue;

/// One step of the ideal (collision-free) recursion, equation (1).
pub fn ideal_step(b: f64) -> f64 {
    best_of_three_blue(b)
}

/// The full trajectory of equation (1) starting from `b0`, for `steps` steps
/// (the returned vector has `steps + 1` entries including `b0`).
pub fn ideal_trajectory(b0: f64, steps: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(steps + 1);
    let mut b = b0;
    out.push(b);
    for _ in 0..steps {
        b = ideal_step(b);
        out.push(b);
    }
    out
}

/// Number of iterations of equation (1) needed to drive the blue probability
/// from `b0 = 1/2 − δ` below `target`. Returns `None` if `b0 ≥ 1/2` (the map
/// does not contract) or the target is not reached within `max_steps`.
pub fn ideal_steps_to_reach(b0: f64, target: f64, max_steps: usize) -> Option<usize> {
    if b0 >= 0.5 || target <= 0.0 {
        return None;
    }
    let mut b = b0;
    for t in 0..=max_steps {
        if b < target {
            return Some(t);
        }
        b = ideal_step(b);
    }
    None
}

/// The collision rate at level `t−1` of a `T`-level voting-DAG on a graph of
/// minimum degree `d`: `ε_{t−1} = 3^{T−t+1}/d` (paper, below equation (2)).
///
/// `t` is the level being computed (`1 ≤ t ≤ T`).
pub fn epsilon(total_levels: usize, t: usize, d: f64) -> f64 {
    debug_assert!(t >= 1 && t <= total_levels);
    3f64.powi((total_levels - t + 1) as i32) / d
}

/// One step of the Sprinkling upper-bound recursion, equation (2):
/// `p_t ≤ (3p² − 2p³) + 6pε + 3ε² + ε³`.
pub fn sprinkling_step(p: f64, eps: f64) -> f64 {
    (best_of_three_blue(p) + 6.0 * p * eps + 3.0 * eps * eps + eps * eps * eps).min(1.0)
}

/// One step of the bias lower bound, equation (4):
/// `δ_t ≥ δ_{t−1} + (δ_{t−1}/2 − 2δ_{t−1}³ − 4ε_{t−1})`.
pub fn delta_step_lower_bound(delta: f64, eps: f64) -> f64 {
    delta + (0.5 * delta - 2.0 * delta * delta * delta - 4.0 * eps)
}

/// A full trajectory of the Sprinkling recursion on a `T`-level DAG over a
/// graph of minimum degree `d`, starting from `p_0 = 1/2 − δ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SprinklingTrajectory {
    /// `p_t` for `t = 0..=levels`.
    pub p: Vec<f64>,
    /// `ε_{t−1}` used at each step (`eps[t]` feeds the step producing `p[t+1]`).
    pub eps: Vec<f64>,
}

/// Runs equation (2) for all `levels` levels of a DAG of total height
/// `levels` on a graph of minimum degree `d`.
pub fn sprinkling_trajectory(delta: f64, levels: usize, d: f64) -> SprinklingTrajectory {
    let mut p = Vec::with_capacity(levels + 1);
    let mut eps_used = Vec::with_capacity(levels);
    let mut current = 0.5 - delta;
    p.push(current);
    for t in 1..=levels {
        let eps = epsilon(levels, t, d);
        current = sprinkling_step(current, eps);
        eps_used.push(eps);
        p.push(current);
    }
    SprinklingTrajectory { p, eps: eps_used }
}

/// The quadratic-decay bound used in phase (ii) of Lemma 4, equation (3):
/// while `p_{t−1} > 12 ε_{t−1}`, `p_t ≤ 4 p_{t−1}²`.
pub fn quadratic_decay_step(p: f64) -> f64 {
    4.0 * p * p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_map_contracts_below_half() {
        let traj = ideal_trajectory(0.45, 20);
        assert_eq!(traj.len(), 21);
        // Monotone decreasing towards 0.
        for w in traj.windows(2) {
            assert!(w[1] <= w[0] + 1e-15);
        }
        assert!(traj[20] < 1e-6);
    }

    #[test]
    fn ideal_map_expands_above_half() {
        let traj = ideal_trajectory(0.55, 20);
        assert!(traj[20] > 1.0 - 1e-6);
    }

    #[test]
    fn ideal_steps_to_reach_is_doubly_logarithmic() {
        // The number of steps to reach 1/n should grow like log log n plus a
        // delta-dependent term: quadratic convergence once b is small.
        let s1 = ideal_steps_to_reach(0.4, 1e-6, 1000).unwrap();
        let s2 = ideal_steps_to_reach(0.4, 1e-12, 1000).unwrap();
        let s3 = ideal_steps_to_reach(0.4, 1e-24, 1000).unwrap();
        // Squaring the precision target adds O(1) steps.
        assert!(s2 - s1 <= 3, "s1={s1}, s2={s2}");
        assert!(s3 - s2 <= 3, "s2={s2}, s3={s3}");
    }

    #[test]
    fn ideal_steps_to_reach_requires_minority_start() {
        assert_eq!(ideal_steps_to_reach(0.5, 0.01, 100), None);
        assert_eq!(ideal_steps_to_reach(0.6, 0.01, 100), None);
        assert_eq!(ideal_steps_to_reach(0.4, 0.0, 100), None);
    }

    #[test]
    fn smaller_delta_needs_more_steps() {
        let fast = ideal_steps_to_reach(0.5 - 0.1, 1e-9, 10_000).unwrap();
        let slow = ideal_steps_to_reach(0.5 - 0.001, 1e-9, 10_000).unwrap();
        assert!(slow > fast);
        // The gap should be roughly log_{?}(delta ratio) * constant — in
        // particular it is additive, not multiplicative.
        assert!(slow - fast < 40);
    }

    #[test]
    fn epsilon_decreases_with_level_and_degree() {
        let t_total = 10;
        // Level closer to the root (larger t) has smaller exponent.
        assert!(epsilon(t_total, 1, 1000.0) > epsilon(t_total, 5, 1000.0));
        assert!(epsilon(t_total, 5, 1000.0) > epsilon(t_total, 10, 1000.0));
        // Larger degree shrinks epsilon.
        assert!(epsilon(t_total, 5, 1e6) < epsilon(t_total, 5, 1e3));
        // Exact value: level t = T gives 3/d.
        assert!((epsilon(t_total, 10, 300.0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn sprinkling_step_reduces_to_ideal_when_eps_zero() {
        for &p in &[0.1, 0.3, 0.49] {
            assert!((sprinkling_step(p, 0.0) - ideal_step(p)).abs() < 1e-15);
        }
    }

    #[test]
    fn sprinkling_step_is_monotone_in_eps() {
        let p = 0.3;
        let mut prev = 0.0;
        for &eps in &[0.0, 1e-6, 1e-4, 1e-2, 0.1] {
            let val = sprinkling_step(p, eps);
            assert!(val >= prev);
            prev = val;
        }
    }

    #[test]
    fn sprinkling_step_never_exceeds_one() {
        assert!(sprinkling_step(0.9, 0.9) <= 1.0);
    }

    #[test]
    fn sprinkling_trajectory_converges_on_dense_graphs() {
        // The bound is only non-vacuous when d ≫ 3^T (the paper's polylog(d)/d
        // error term): with d = 1e12 and T = 12 levels, ε stays ≤ 5.4e-7 and
        // the recursion collapses the blue probability.
        let traj = sprinkling_trajectory(0.1, 12, 1e12);
        assert_eq!(traj.p.len(), 13);
        assert_eq!(traj.eps.len(), 12);
        let last = *traj.p.last().unwrap();
        assert!(last < 1e-6, "final blue probability {last}");
    }

    #[test]
    fn sprinkling_trajectory_stalls_on_sparse_graphs() {
        // With a tiny degree the error term dominates and p_t stays large:
        // this is exactly why the theorem needs d = n^{Ω(1/ log log n)}.
        let traj = sprinkling_trajectory(0.05, 12, 20.0);
        let last = *traj.p.last().unwrap();
        assert!(
            last > 0.1,
            "final blue probability {last} unexpectedly small"
        );
    }

    #[test]
    fn delta_lower_bound_grows_at_rate_five_quarters() {
        // Inequality (5): if δ ≥ 12ε and δ < 1/(2√3) then δ_t ≥ (5/4)δ_{t−1}.
        let eps = 1e-6;
        let mut delta = 12.0 * eps + 1e-5;
        for _ in 0..50 {
            if delta >= 1.0 / (2.0 * 3f64.sqrt()) {
                break;
            }
            let next = delta_step_lower_bound(delta, eps);
            assert!(next >= 1.25 * delta - 1e-15, "delta {delta} -> {next}");
            delta = next;
        }
        assert!(delta >= 1.0 / (2.0 * 3f64.sqrt()));
    }

    #[test]
    fn quadratic_decay_squares_small_probabilities() {
        let p = 1e-3;
        assert!((quadratic_decay_step(p) - 4e-6).abs() < 1e-18);
        // Six steps of quadratic decay from 0.2 crush the probability.
        let mut q = 0.2;
        for _ in 0..6 {
            q = quadratic_decay_step(q);
        }
        assert!(q < 1e-6, "q = {q}");
    }

    #[test]
    fn sprinkling_upper_bounds_ideal() {
        // Equation (2) is an upper bound on the true process, so with any
        // positive epsilon it must dominate the ideal recursion pointwise.
        let ideal = ideal_trajectory(0.45, 10);
        let sprink = sprinkling_trajectory(0.05, 10, 1e5);
        for (i, s) in sprink.p.iter().enumerate() {
            assert!(*s + 1e-15 >= ideal[i], "level {i}: {s} < {}", ideal[i]);
        }
    }
}
