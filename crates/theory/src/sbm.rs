//! Mean-field polarisation thresholds for Best-of-Three on two-block SBMs.
//!
//! Shimizu–Shiraga (*Phase Transitions of Best-of-Two and Best-of-Three on
//! Stochastic Block Models*) show that on a dense two-block SBM the
//! community structure survives the dynamics exactly when the blocks are
//! sufficiently assortative.  In the mean-field (n → ∞) limit the per-block
//! blue fractions `(b₀, b₁)` evolve as
//!
//! ```text
//! bᵢ' = g(α·bᵢ + (1 − α)·b_{1−i})        g(x) = 3x² − 2x³
//! ```
//!
//! where `α = p_in / (p_in + p_out)` is the weight a vertex puts on its own
//! block (both blocks have size `n/2`, so edge probabilities convert to
//! sampling weights directly) and `g` is the Best-of-Three response —
//! the probability that the majority of three i.i.d. `Bernoulli(x)` draws
//! is blue ([`crate::binomial`] derives it).
//!
//! **The threshold.**  On the anti-symmetric manifold `b₁ = 1 − b₀` (one
//! block leaning blue, the mirror block leaning red — the polarised shape)
//! the map reduces to one dimension: `b' = g(α·b + (1 − α)(1 − b))`.  The
//! symmetric fixed point `b = 1/2` has derivative `g'(1/2)·(2α − 1) =
//! (3/2)(2α − 1)`, so it destabilises — a pitchfork bifurcation to a
//! polarised pair of fixed points — exactly when
//!
//! ```text
//! α* = 5/6,   i.e.   (p_in/p_out)* = α*/(1 − α*) = 5.
//! ```
//!
//! Below the threshold every disagreement decays on the manifold; above it
//! a polarised pair of fixed points `(b*, 1 − b*)` exists.  The generic
//! form for any smooth response with slope `s = g'(1/2)` is
//! `ratio* = (s + 1)/(s − 1)` ([`polarisation_threshold_ratio`]),
//! recovering `ratio* = 5` for Best-of-Three (`s = 3/2`) and predicting no
//! finite threshold for the voter model (`s = 1`: never polarises).
//!
//! **Two thresholds, not one.**  The pitchfork at ratio 5 governs the
//! *balanced* system (global blue fraction pinned at 1/2 — the
//! anti-symmetric manifold).  Off the manifold the symmetric (consensus)
//! direction at the unbiased point has multiplier `g'(1/2) = 3/2 > 1`, and
//! at the polarised fixed point the full 2-D Jacobian is
//! `g'(u*)·[[α, 1−α], [1−α, α]]` with `u* = 1/2 + (2α−1)m*` (using
//! `g'(1/2 + x) = 3/2 − 6x²` and the fixed-point amplitude
//! `m*² = (3k/2 − 1)/(2k³)`, `k = 2α − 1`), whose symmetric eigenvalue
//! `g'(u*)` drops below 1 exactly when `k > 3/4`, i.e.
//!
//! ```text
//! α** = 7/8,   (p_in/p_out)** = 7.
//! ```
//!
//! Between ratios 5 and 7 polarisation exists but is unstable to global
//! bias — a finite-`n` run with `δ > 0` decays to consensus, while a
//! balanced run stays split (metastably).  Above 7 the polarised profile
//! is locally stable outright.  The e18 phase-surface campaign measures
//! where the observed threshold sits between these two predictions across
//! `δ` at `n = 10⁶`.

use crate::binomial::best_of_three_blue;

/// The Best-of-Three response `g(x) = 3x² − 2x³`: the probability that the
/// majority of three i.i.d. `Bernoulli(x)` samples is a success.
pub fn best_of_three_response(x: f64) -> f64 {
    best_of_three_blue(x)
}

/// Slope of the Best-of-Three response at the unbiased point,
/// `g'(1/2) = 3/2`.
pub const BEST_OF_THREE_SLOPE_AT_HALF: f64 = 1.5;

/// Own-block sampling weight `α = p_in/(p_in + p_out) = ratio/(ratio + 1)`
/// on an equal-block two-community SBM, as a function of the assortativity
/// ratio `p_in/p_out`.
pub fn own_block_weight(ratio: f64) -> f64 {
    ratio / (ratio + 1.0)
}

/// The critical own-block weight `α* = 5/6`: the pitchfork point where
/// `g'(1/2)·(2α − 1) = 1` for the Best-of-Three slope `g'(1/2) = 3/2`.
pub fn critical_alpha() -> f64 {
    5.0 / 6.0
}

/// The critical assortativity ratio `(p_in/p_out)* = α*/(1 − α*) = 5` for
/// Best-of-Three on the two-block SBM — the mean-field polarisation
/// threshold the e18 campaign measures against.
pub fn critical_ratio() -> f64 {
    polarisation_threshold_ratio(BEST_OF_THREE_SLOPE_AT_HALF)
}

/// The polarisation threshold `(p_in/p_out)* = (s + 1)/(s − 1)` for any
/// smooth quasi-majority response with slope `s = g'(1/2) > 1` at the
/// unbiased point.  Returns `+∞` for `s ≤ 1` (a voter-like response never
/// sustains polarisation).
pub fn polarisation_threshold_ratio(slope: f64) -> f64 {
    if slope <= 1.0 {
        f64::INFINITY
    } else {
        (slope + 1.0) / (slope - 1.0)
    }
}

/// The ratio `(p_in/p_out)** = 7` above which the polarised fixed point is
/// stable in the *full* two-block mean field (both eigen-directions), not
/// just on the balanced manifold — `α** = 7/8`, from `g'(u*) = 1` at the
/// fixed-point amplitude (see the module docs).  Between
/// [`critical_ratio`] and this, polarisation is metastable: it persists
/// only while the global blue fraction stays at 1/2.
pub fn stable_polarisation_ratio() -> f64 {
    7.0
}

/// One step of the balanced (anti-symmetric manifold) system: the global
/// blue fraction is pinned at 1/2 and only the block imbalance evolves,
/// `b' = g(α·b + (1 − α)(1 − b))` with block 1 at `1 − b` by construction.
/// This is the 1-D map whose pitchfork sits at [`critical_alpha`].
pub fn balanced_step(alpha: f64, b: f64) -> f64 {
    best_of_three_response(alpha * b + (1.0 - alpha) * (1.0 - b))
}

/// Iterates [`balanced_step`] from `b` and reports whether the balanced
/// system settles away from the symmetric point (`|b − 1/2| > 1e-6` after
/// convergence) — polarisation under a pinned global blue fraction.
pub fn balanced_polarises(alpha: f64, b: f64, max_rounds: usize) -> bool {
    let mut b = b;
    for _ in 0..max_rounds {
        let next = balanced_step(alpha, b);
        let step = (next - b).abs();
        b = next;
        if step < 1e-12 {
            break;
        }
    }
    (b - 0.5).abs() > 1e-6
}

/// One mean-field step of the two-block system: maps the per-block blue
/// fractions `(b₀, b₁)` forward under own-block weight `alpha`.
pub fn mean_field_step(alpha: f64, b0: f64, b1: f64) -> (f64, f64) {
    (
        best_of_three_response(alpha * b0 + (1.0 - alpha) * b1),
        best_of_three_response(alpha * b1 + (1.0 - alpha) * b0),
    )
}

/// Iterates the mean-field system from `(b0, b1)` and reports whether it
/// settles on a polarised profile (the blocks disagree in the limit) rather
/// than a consensus.
///
/// The trajectory is declared polarised when it converges (step change
/// below `1e-12`) to a point with `|b₀ − b₁| > 1e-6`, and consensual when
/// it converges with the blocks (essentially) agreeing near 0 or 1.
pub fn mean_field_polarises(alpha: f64, b0: f64, b1: f64, max_rounds: usize) -> bool {
    let (mut b0, mut b1) = (b0, b1);
    for _ in 0..max_rounds {
        let (n0, n1) = mean_field_step(alpha, b0, b1);
        let step = (n0 - b0).abs().max((n1 - b1).abs());
        b0 = n0;
        b1 = n1;
        if step < 1e-12 {
            break;
        }
    }
    (b0 - b1).abs() > 1e-6
}

/// The smallest assortativity ratio (on a fine scan) at which a
/// prefix-placed start — every blue vertex in block 0, i.e.
/// `(b₀, b₁) = (1 − 2δ, 0)` for global blue fraction `(1 − 2δ)/2 = 1/2 − δ`
/// — stays polarised in the mean field.
///
/// A `δ > 0` start is globally red-leaning, so the relevant prediction is
/// the full-stability threshold [`stable_polarisation_ratio`] (= 7), not
/// the balanced pitchfork at 5; the numeric threshold sits at or above it
/// and grows with `δ`.  Returns `None` when no ratio up to `max_ratio`
/// polarises (for `δ ≥ 1/4` the favoured block's effective input never
/// exceeds 1/2, so none does).
pub fn prefix_threshold_ratio(delta: f64, max_ratio: f64, step: f64) -> Option<f64> {
    let b0 = 1.0 - 2.0 * delta;
    let mut ratio = 1.0;
    while ratio <= max_ratio {
        if mean_field_polarises(own_block_weight(ratio), b0, 0.0, 100_000) {
            return Some(ratio);
        }
        ratio += step;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_matches_the_cubic_and_its_slope() {
        for x in [0.0, 0.1, 0.35, 0.5, 0.8, 1.0] {
            let expect = 3.0 * x * x - 2.0 * x * x * x;
            assert!((best_of_three_response(x) - expect).abs() < 1e-12, "{x}");
        }
        // Central-difference slope at 1/2 matches the constant.
        let h = 1e-6;
        let slope = (best_of_three_response(0.5 + h) - best_of_three_response(0.5 - h)) / (2.0 * h);
        assert!((slope - BEST_OF_THREE_SLOPE_AT_HALF).abs() < 1e-6);
    }

    #[test]
    fn critical_point_closed_forms_agree() {
        assert!((critical_alpha() - 5.0 / 6.0).abs() < 1e-15);
        assert!((critical_ratio() - 5.0).abs() < 1e-12);
        // α* and ratio* describe the same point.
        assert!((own_block_weight(critical_ratio()) - critical_alpha()).abs() < 1e-12);
        // Generic formula sanity: s = 3 (steeper) thresholds lower.
        assert!((polarisation_threshold_ratio(3.0) - 2.0).abs() < 1e-12);
        assert_eq!(polarisation_threshold_ratio(1.0), f64::INFINITY);
        assert_eq!(polarisation_threshold_ratio(0.5), f64::INFINITY);
    }

    #[test]
    fn balanced_pitchfork_sits_exactly_at_ratio_five() {
        // On the balanced manifold a tiny block imbalance dies below the
        // threshold and settles on a split profile above it.
        for (ratio, polarises) in [(3.0, false), (4.9, false), (5.1, true), (8.0, true)] {
            assert_eq!(
                balanced_polarises(own_block_weight(ratio), 0.5 + 1e-3, 200_000),
                polarises,
                "ratio {ratio}"
            );
        }
    }

    #[test]
    fn full_system_needs_ratio_seven_for_stable_polarisation() {
        // A near-balanced but slightly red-leaning polarised start: between
        // ratios 5 and 7 the consensus direction wins (metastable window);
        // above 7 the polarised fixed point is stable outright.
        for (ratio, polarises) in [(6.0, false), (8.0, true), (20.0, true)] {
            assert_eq!(
                mean_field_polarises(own_block_weight(ratio), 0.9, 0.05, 200_000),
                polarises,
                "ratio {ratio}"
            );
        }
        assert!((stable_polarisation_ratio() - 7.0).abs() < 1e-15);
        // And well below the pitchfork even a fully polarised start
        // collapses to consensus.
        assert!(!mean_field_polarises(
            own_block_weight(2.0),
            0.9,
            0.0,
            200_000
        ));
    }

    #[test]
    fn prefix_start_threshold_sits_between_the_two_predictions_or_above() {
        // δ = 0.05: prefix placement gives (b₀, b₁) = (0.9, 0) — strongly
        // community-correlated but red-leaning, so its threshold lands at or
        // above the full-stability ratio 7, well above the pitchfork at 5.
        let t = prefix_threshold_ratio(0.05, 40.0, 0.1).expect("threshold exists");
        assert!(t >= critical_ratio() && t < 20.0, "threshold {t}");
        assert!(t >= stable_polarisation_ratio() - 0.2, "threshold {t}");
        // A weaker correlation (larger δ) needs at least as much
        // assortativity …
        let t_weak = prefix_threshold_ratio(0.10, 40.0, 0.1).expect("threshold exists");
        assert!(t_weak >= t, "{t_weak} < {t}");
        // … and with half the vertices blue in block 0 only (δ = 0.25) the
        // block's effective input never exceeds 1/2, so no assortativity
        // sustains it.
        assert_eq!(prefix_threshold_ratio(0.25, 40.0, 0.1), None);
    }
}
