//! Scenario: the three phases of Lemma 4, observed on a live trajectory.
//!
//! Runs a single traced Best-of-Three run on a dense graph, prints the
//! blue-fraction trajectory next to the idealised recursion (1), and then
//! segments the measured trajectory into the phases the proof of Lemma 4
//! predicts: geometric bias amplification (rate ≥ 5/4), quadratic decay, and
//! the final extinction step.
//!
//! ```text
//! cargo run --release -p bo3-examples --bin phase_portrait -- --n 50000 --delta 0.02
//! ```

use bo3_core::prelude::*;
use bo3_examples::{banner, Args};
use bo3_theory::phases::phase_plan;
use bo3_theory::recursion::ideal_trajectory;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let n = args.get_or("n", 20_000usize);
    let delta = args.get_or("delta", 0.02f64);
    let seed = args.get_or("seed", 5u64);

    banner("Phase portrait of one Best-of-Three trajectory");
    println!("complete graph on {n} vertices, delta = {delta}");

    // The traced single-run drill-down needs materialised rows, so the spec
    // is built to a graph explicitly (K_n is deterministic; the seed only
    // matters for random families).
    let graph = TopologySpec::Materialised(GraphSpec::Complete { n })
        .build(seed)
        .expect("graph generation failed")
        .as_graph()
        .expect("materialised spec yields a graph")
        .clone();

    let simulator = Engine::on_graph(&graph).expect("engine").with_trace(true);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let initial = InitialCondition::BernoulliWithBias { delta }
        .sample(&graph, &mut rng)
        .expect("initial condition");
    let run = simulator
        .run(&BestOfThree::new(), initial, &mut rng)
        .expect("run failed");
    let trace = run.trace.as_ref().expect("trace enabled");

    // Side-by-side trajectory: measured vs. the idealised recursion (1).
    let measured = trace.blue_fractions();
    let ideal = ideal_trajectory(0.5 - delta, measured.len().saturating_sub(1));
    let table = trajectory_table(
        "Blue fraction per round (measured vs. equation (1))",
        &measured,
        &ideal,
        "eq(1) recursion",
    );
    println!("{}", table.to_pretty_string());

    // Phase segmentation.
    let observed = segment_trace(trace, n);
    println!("observed phases:");
    println!(
        "  bias amplification : {} rounds (measured growth rate {:.2} per round; Lemma 4 proves ≥ 1.25)",
        observed.bias_amplification_rounds,
        observed.measured_bias_growth_rate.unwrap_or(f64::NAN)
    );
    println!(
        "  decay to extinction: {} rounds after the 1/(2√3) hand-over point",
        observed
            .decay_rounds
            .map(|r| r.to_string())
            .unwrap_or_else(|| "-".into())
    );
    println!(
        "  total              : {} rounds, winner: {:?}",
        observed.total_rounds, run.winner
    );

    if let Some(plan) = phase_plan((n - 1) as f64, delta, 2.0) {
        println!();
        println!("paper's plan for the same parameters (proof constants, so conservative):");
        println!(
            "  T3 (bias amplification) = {}, T2 (quadratic decay) = {}, final step = {}, \
             upper levels = {}  → total {}",
            plan.t3_bias_amplification,
            plan.t2_quadratic_decay,
            plan.t1_final_step,
            plan.upper_levels,
            plan.total_levels()
        );
        let cmp = PhaseComparison::new(observed, plan);
        println!("  observed/planned total ratio: {:.2}", cmp.total_ratio());
    }
}
