//! Scenario: head-to-head comparison of voting protocols.
//!
//! Runs the whole comparison set — voter (Best-of-1), Best-of-2, Best-of-3,
//! Best-of-5 and deterministic local majority — on the same dense graph with
//! the same initial bias, and prints consensus time and majority-win rate for
//! each.  This is the interactive version of experiment E3/E5.
//!
//! ```text
//! cargo run --release -p bo3-examples --bin protocol_faceoff -- --n 5000 --delta 0.08
//! ```

use bo3_core::prelude::*;
use bo3_examples::{banner, Args};

fn main() {
    let args = Args::from_env();
    let n = args.get_or("n", 5_000usize);
    let delta = args.get_or("delta", 0.08f64);
    let replicas = args.get_or("replicas", 10usize);
    let seed = args.get_or("seed", 99u64);

    banner("Protocol face-off on a dense random graph");
    println!("graph: G(n, p) with n = {n} and expected degree n^0.75; delta = {delta}");

    let graph_spec = GraphSpec::DenseForAlpha { n, alpha: 0.75 };

    let mut results = Vec::new();
    for (label, protocol) in comparison_protocols() {
        // The voter model needs a far larger round budget; everything else
        // converges in a handful of rounds.
        let (cap, reps) = if matches!(protocol, ProtocolSpec::Voter) {
            (2_000_000, 2.min(replicas))
        } else {
            (20_000, replicas)
        };
        let experiment = Experiment::on(graph_spec.clone())
            .named(format!("faceoff/{label}"))
            .protocol(protocol)
            .initial(InitialCondition::BernoulliWithBias { delta })
            .stopping(StoppingCondition::consensus_within(cap))
            .replicas(reps)
            .seed(seed);
        let result = experiment.run().expect("experiment failed");
        println!(
            "{label:<16} mean rounds: {:>10}   majority wins: {}",
            fmt_opt_f64(result.mean_rounds()),
            fmt_opt_f64(result.red_win_rate()),
        );
        results.push(result);
    }

    println!();
    let table = results_table("Protocol face-off", &results);
    println!("{}", table.to_pretty_string());
    println!(
        "Reading: Best-of-2/3/5 amplify the initial majority and converge in O(log log n)-ish \
         time; the voter model is both slow (Θ(n) expected on dense graphs) and only wins in \
         proportion to the initial share; local majority is fastest but reads whole \
         neighbourhoods every round."
    );
}
