//! Quickstart: Theorem 1 on a dense random graph.
//!
//! Generates a dense Erdős–Rényi graph in the paper's regime (`d ≈ n^α`),
//! seeds every vertex blue with probability `1/2 − δ`, runs the Best-of-Three
//! dynamics over several Monte-Carlo replicas, and prints the measured
//! consensus time next to the paper's `O(log log n) + O(log δ⁻¹)` prediction.
//!
//! ```text
//! cargo run --release -p bo3-examples --bin quickstart -- --n 20000 --alpha 0.8 --delta 0.05
//! ```

use bo3_core::prelude::*;
use bo3_examples::{banner, rounds_with_spread, Args};

fn main() {
    let args = Args::from_env();
    let n = args.get_or("n", 20_000usize);
    let alpha = args.get_or("alpha", 0.8f64);
    let delta = args.get_or("delta", 0.05f64);
    let replicas = args.get_or("replicas", 10usize);
    let seed = args.get_or("seed", 1u64);

    banner("Best-of-Three voting on a dense graph (Theorem 1)");
    println!(
        "n = {n}, target degree n^{alpha} ≈ {:.0}, delta = {delta}",
        (n as f64).powf(alpha)
    );

    let experiment = Experiment::theorem_one(
        format!("quickstart/n={n}"),
        GraphSpec::DenseForAlpha { n, alpha },
        delta,
        replicas,
        seed,
    );

    let result = experiment.run().expect("experiment failed");

    println!();
    println!("graph: {}", result.graph_label);
    println!(
        "realised degrees: min {}, mean {:.1}, alpha {:.3}",
        result.degree_stats.min,
        result.degree_stats.mean,
        result.degree_stats.alpha().unwrap_or(f64::NAN),
    );
    println!(
        "consensus: {} of {} replicas converged, red won {:.0}% of them",
        (result.report.consensus_rate * result.report.outcomes.len() as f64).round(),
        result.report.outcomes.len(),
        result.red_win_rate().unwrap_or(0.0) * 100.0
    );
    println!(
        "measured consensus time: {}",
        rounds_with_spread(
            result.mean_rounds(),
            result.report.rounds_to_consensus.as_ref().map(|s| s.p90)
        )
    );
    if let Some(pred) = &result.prediction {
        println!(
            "paper prediction: within-theorem-regime = {}, proof-constant bound ≈ {} rounds, \
             idealised (eq. 1) reference ≈ {} rounds",
            pred.in_theorem_regime,
            pred.predicted_rounds
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into()),
            pred.ideal_rounds
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }

    println!();
    let table = results_table("Quickstart summary", std::slice::from_ref(&result));
    println!("{}", table.to_pretty_string());
}
