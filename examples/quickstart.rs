//! Quickstart: Theorem 1 through the builder-style Scenario API.
//!
//! Part 1 generates a dense Erdős–Rényi graph in the paper's regime
//! (`d ≈ n^α`), seeds every vertex blue with probability `1/2 − δ`, runs the
//! Best-of-Three dynamics over several Monte-Carlo replicas, and prints the
//! measured consensus time next to the paper's
//! `O(log log n) + O(log δ⁻¹)` prediction.
//!
//! Part 2 runs the same experiment on an *implicit* `G(n, 1/2)` at
//! `n = 10⁶` — a graph whose CSR adjacency would need terabytes, previously
//! impossible through `Experiment` — by swapping one line: the
//! `TopologySpec`.
//!
//! ```text
//! cargo run --release -p bo3-examples --bin quickstart -- --n 20000 --alpha 0.8 --delta 0.05
//! ```

use bo3_core::prelude::*;
use bo3_examples::{banner, rounds_with_spread, Args};

fn main() {
    let args = Args::from_env();
    let n = args.get_or("n", 20_000usize);
    let alpha = args.get_or("alpha", 0.8f64);
    let delta = args.get_or("delta", 0.05f64);
    let replicas = args.get_or("replicas", 10usize);
    let seed = args.get_or("seed", 1u64);
    let scale_n = args.get_or("scale-n", 1_000_000usize);

    banner("Best-of-Three voting on a dense graph (Theorem 1)");
    println!(
        "n = {n}, target degree n^{alpha} ≈ {:.0}, delta = {delta}",
        (n as f64).powf(alpha)
    );

    let result = Experiment::on(GraphSpec::DenseForAlpha { n, alpha })
        .named(format!("quickstart/n={n}"))
        .initial(InitialCondition::BernoulliWithBias { delta })
        .stopping(StoppingCondition::consensus_within(10_000))
        .replicas(replicas)
        .seed(seed)
        .run()
        .expect("experiment failed");

    println!();
    println!("topology: {}", result.topology_label);
    if let Some(stats) = result.degree_stats.computed() {
        println!(
            "realised degrees: min {}, mean {:.1}, alpha {:.3}",
            stats.min,
            stats.mean,
            stats.alpha().unwrap_or(f64::NAN),
        );
    }
    println!(
        "consensus: {} of {} replicas converged, red won {:.0}% of them",
        (result.report.consensus_rate * result.report.outcomes.len() as f64).round(),
        result.report.outcomes.len(),
        result.red_win_rate().unwrap_or(0.0) * 100.0
    );
    println!(
        "measured consensus time: {}",
        rounds_with_spread(
            result.mean_rounds(),
            result.report.rounds_to_consensus.as_ref().map(|s| s.p90)
        )
    );
    if let Some(pred) = result.prediction.computed() {
        println!(
            "paper prediction: within-theorem-regime = {}, proof-constant bound ≈ {} rounds, \
             idealised (eq. 1) reference ≈ {} rounds",
            pred.in_theorem_regime,
            pred.predicted_rounds
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into()),
            pred.ideal_rounds
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }

    banner(&format!(
        "The same experiment at n = {scale_n} — implicit G(n, 1/2)"
    ));
    println!(
        "swapping the TopologySpec is the whole migration: the graph below is \
         never materialised (its CSR would need ~{} GB)",
        scale_n as u128 * scale_n as u128 / 2 * 8 / 1_000_000_000
    );

    let scale_result = Experiment::on(TopologySpec::ImplicitGnp { n: scale_n, p: 0.5 })
        .named(format!("quickstart/implicit-n={scale_n}"))
        .initial(InitialCondition::BernoulliWithBias { delta: 0.15 })
        .stopping(StoppingCondition::consensus_within(10_000))
        .replicas(1)
        .seed(seed)
        .run()
        .expect("implicit experiment failed");

    println!(
        "topology: {} ({} bytes of state)",
        scale_result.topology_label, scale_result.topology_memory_bytes
    );
    println!(
        "degree stats: {}",
        scale_result
            .degree_stats
            .skipped_reason()
            .unwrap_or("computed")
    );
    println!(
        "consensus: red won {:.0}% of replicas, {}",
        scale_result.red_win_rate().unwrap_or(0.0) * 100.0,
        rounds_with_spread(
            scale_result.mean_rounds(),
            scale_result
                .report
                .rounds_to_consensus
                .as_ref()
                .map(|s| s.p90)
        )
    );

    println!();
    let table = results_table("Quickstart summary", &[result, scale_result]);
    println!("{}", table.to_pretty_string());
}
