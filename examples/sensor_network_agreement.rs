//! Scenario: binary agreement in a sensor mesh vs. a dense overlay.
//!
//! A fleet of sensors must agree on a binary reading (e.g. "threshold
//! exceeded") where each sensor's local measurement is wrong with probability
//! `1/2 − δ`.  Two communication topologies are compared:
//!
//! * a 2-D torus mesh (constant degree — *outside* the paper's dense regime),
//! * a random `d`-regular overlay with `d = n^α` (inside the regime).
//!
//! Best-of-Three needs only three samples per round per sensor, and on the
//! dense overlay it reaches the correct consensus in a handful of rounds —
//! the `O(log log n)` behaviour of Theorem 1 — while the mesh pays for its
//! sparse connectivity.
//!
//! ```text
//! cargo run --release -p bo3-examples --bin sensor_network_agreement -- --side 100 --delta 0.1
//! ```

use bo3_core::prelude::*;
use bo3_examples::{banner, rounds_with_spread, Args};

fn agreement_on(
    name: &str,
    topology: impl Into<TopologySpec>,
    delta: f64,
    replicas: usize,
    seed: u64,
) -> ExperimentResult {
    Experiment::on(topology)
        .named(name)
        .protocol(ProtocolSpec::BestOfThree)
        .initial(InitialCondition::BernoulliWithBias { delta })
        .stopping(StoppingCondition::consensus_within(20_000))
        .replicas(replicas)
        .seed(seed)
        .run()
        .expect("experiment failed")
}

fn main() {
    let args = Args::from_env();
    let side = args.get_or("side", 100usize);
    let delta = args.get_or("delta", 0.1f64);
    let replicas = args.get_or("replicas", 8usize);
    let seed = args.get_or("seed", 7u64);

    let n = side * side;
    let alpha = 0.6;
    let d = (((n as f64).powf(alpha).round() as usize) & !1usize).max(2); // even => n*d even for any n

    banner("Sensor-network agreement: mesh vs. dense overlay");
    println!(
        "{n} sensors, each initially wrong with probability 1/2 − {delta}; \
         the correct reading is 'red'"
    );

    let mesh = agreement_on(
        "sensors/torus-mesh",
        GraphSpec::Torus2d {
            rows: side,
            cols: side,
        },
        delta,
        replicas,
        seed,
    );
    let overlay = agreement_on(
        "sensors/dense-overlay",
        GraphSpec::RandomRegular { n, d },
        delta,
        replicas,
        seed,
    );

    println!();
    println!(
        "torus mesh (degree 4)        : correct consensus in {:.0}% of replicas, {}",
        mesh.red_win_rate().unwrap_or(0.0) * 100.0,
        rounds_with_spread(
            mesh.mean_rounds(),
            mesh.report.rounds_to_consensus.as_ref().map(|s| s.p90)
        )
    );
    println!(
        "dense overlay (degree {d:>4}) : correct consensus in {:.0}% of replicas, {}",
        overlay.red_win_rate().unwrap_or(0.0) * 100.0,
        rounds_with_spread(
            overlay.mean_rounds(),
            overlay.report.rounds_to_consensus.as_ref().map(|s| s.p90)
        )
    );
    if let Some(pred) = overlay.prediction.computed() {
        println!(
            "paper regime check for the overlay: alpha ≈ {:.2}, in-theorem-regime = {}",
            overlay.alpha().unwrap_or(f64::NAN),
            pred.in_theorem_regime
        );
    }
    println!();
    println!(
        "The overlay pays O(1) messages per sensor per round (3 samples) and still converges in \
         O(log log n) rounds; the mesh's constant degree puts it outside Theorem 1 and its \
         consensus time grows with the graph diameter instead."
    );

    println!();
    let table = results_table("Sensor-network scenario", &[mesh, overlay]);
    println!("{}", table.to_pretty_string());
}
