//! Scenario: competing opinions in a heavy-tailed social network.
//!
//! A Chung–Lu power-law graph stands in for a social network.  A minority
//! opinion ("blue") is seeded two ways — independently at random (the
//! paper's model) and adversarially on the highest-degree accounts
//! (influencers) — and the example shows how Best-of-Three amplifies the
//! majority in the first case while the voter model drifts, and how far the
//! influencer placement can push against the majority.
//!
//! ```text
//! cargo run --release -p bo3-examples --bin social_network_rumour -- --n 30000 --delta 0.05
//! ```

use bo3_core::prelude::*;
use bo3_examples::{banner, rounds_with_spread, Args};

fn run(
    name: &str,
    graph_spec: GraphSpec,
    protocol: ProtocolSpec,
    initial: InitialCondition,
    replicas: usize,
    seed: u64,
) -> ExperimentResult {
    Experiment::on(graph_spec)
        .named(name)
        .protocol(protocol)
        .initial(initial)
        .stopping(StoppingCondition::consensus_within(50_000))
        .replicas(replicas)
        .seed(seed)
        .run()
        .expect("experiment failed")
}

fn main() {
    let args = Args::from_env();
    let n = args.get_or("n", 30_000usize);
    let delta = args.get_or("delta", 0.05f64);
    let replicas = args.get_or("replicas", 8usize);
    let seed = args.get_or("seed", 2024u64);

    let graph = GraphSpec::ChungLuPowerLaw {
        n,
        exponent: 2.5,
        min_weight: 20.0,
        max_weight: (n as f64).sqrt(),
    };

    banner("Rumour vs. correction in a power-law social network");
    println!(
        "network: Chung–Lu power law, n = {n}, exponent 2.5, expected degrees in [20, {:.0}]",
        (n as f64).sqrt()
    );
    println!("the minority ('rumour', blue) starts with probability 1/2 − {delta}");

    // The paper's setting: i.i.d. minority, Best-of-Three vs. voter model.
    let bo3 = run(
        "social/bo3-iid",
        graph.clone(),
        ProtocolSpec::BestOfThree,
        InitialCondition::BernoulliWithBias { delta },
        replicas,
        seed,
    );
    let voter = run(
        "social/voter-iid",
        graph.clone(),
        ProtocolSpec::Voter,
        InitialCondition::BernoulliWithBias { delta },
        2, // the voter model is orders of magnitude slower; keep the budget small
        seed,
    );

    println!();
    println!(
        "best-of-3 : majority (red) won {:.0}% of replicas, {}",
        bo3.red_win_rate().unwrap_or(0.0) * 100.0,
        rounds_with_spread(
            bo3.mean_rounds(),
            bo3.report.rounds_to_consensus.as_ref().map(|s| s.p90)
        )
    );
    println!(
        "voter     : majority (red) won {:.0}% of replicas, {}",
        voter.red_win_rate().unwrap_or(0.0) * 100.0,
        rounds_with_spread(
            voter.mean_rounds(),
            voter.report.rounds_to_consensus.as_ref().map(|s| s.p90)
        )
    );

    // Adversarial seeding: the same number of blue vertices, but placed on the
    // highest-degree accounts.
    let blue_budget = ((0.5 - delta) * n as f64).round() as usize;
    let influencers = run(
        "social/bo3-influencers",
        graph.clone(),
        ProtocolSpec::BestOfThree,
        InitialCondition::HighestDegreeBlue { blue: blue_budget },
        replicas,
        seed + 1,
    );
    println!();
    println!(
        "adversarial seeding ({} highest-degree accounts blue): red won {:.0}% of replicas, {}",
        blue_budget,
        influencers.red_win_rate().unwrap_or(0.0) * 100.0,
        rounds_with_spread(
            influencers.mean_rounds(),
            influencers
                .report
                .rounds_to_consensus
                .as_ref()
                .map(|s| s.p90)
        )
    );
    println!(
        "(the paper's theorem assumes i.i.d. seeding; degree-targeted placement is outside it, \
         which is why the majority's advantage can shrink here)"
    );

    println!();
    let table = results_table("Social-network scenario", &[bo3, voter, influencers]);
    println!("{}", table.to_pretty_string());
}
