//! Shared helpers for the example binaries.
//!
//! The examples keep their command-line surface tiny on purpose (a couple of
//! `--key value` overrides each); this module provides the small argument
//! parser and a couple of printing helpers they share so each example file
//! stays focused on the scenario it demonstrates.

use std::collections::HashMap;

/// A minimal `--key value` argument parser.
///
/// Unrecognised keys are collected verbatim so examples can report them;
/// flags without values are stored with an empty string.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

/// Parses an explicit sequence of `--key value` arguments.
impl FromIterator<String> for Args {
    fn from_iter<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut values = HashMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().unwrap_or_default(),
                    _ => String::new(),
                };
                values.insert(key.to_string(), value);
            }
        }
        Args { values }
    }
}

impl Args {
    /// Parses the process arguments (skipping the binary name).
    pub fn from_env() -> Self {
        std::env::args().skip(1).collect()
    }

    /// Returns the value of `key` parsed as `T`, or `default` when absent or
    /// unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse::<T>().ok())
            .unwrap_or(default)
    }

    /// Whether the flag was passed at all.
    pub fn has(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }
}

/// Prints a section banner so multi-part example output is easy to scan.
pub fn banner(title: &str) {
    println!();
    println!("{}", "=".repeat(title.len() + 8));
    println!("=== {title} ===");
    println!("{}", "=".repeat(title.len() + 8));
}

/// Formats a number of rounds with its per-replica spread.
pub fn rounds_with_spread(mean: Option<f64>, p90: Option<f64>) -> String {
    match (mean, p90) {
        (Some(m), Some(p)) => format!("{m:.1} rounds (p90 {p:.1})"),
        (Some(m), None) => format!("{m:.1} rounds"),
        _ => "did not converge".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_value_pairs_and_flags() {
        let args = Args::from_iter(
            ["--n", "5000", "--delta", "0.05", "--verbose"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(args.get_or("n", 0usize), 5000);
        assert!((args.get_or("delta", 0.0f64) - 0.05).abs() < 1e-12);
        assert!(args.has("verbose"));
        assert!(!args.has("missing"));
        assert_eq!(args.get_or("missing", 7u32), 7);
    }

    #[test]
    fn unparsable_values_fall_back_to_defaults() {
        let args = Args::from_iter(["--n", "abc"].iter().map(|s| s.to_string()));
        assert_eq!(args.get_or("n", 3usize), 3);
    }

    #[test]
    fn rounds_formatting() {
        assert!(rounds_with_spread(Some(7.25), Some(9.0)).contains("7.2"));
        assert_eq!(rounds_with_spread(None, None), "did not converge");
        assert_eq!(rounds_with_spread(Some(3.0), None), "3.0 rounds");
    }
}
