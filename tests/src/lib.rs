//! Shared scenario helpers for the cross-crate integration tests.
//!
//! The integration tests exercise end-to-end paths that span several crates
//! (generate a graph → run dynamics → compare against theory → verify with
//! the DAG dual); the builders here keep each test focused on the property it
//! checks rather than on wiring.

use bo3_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A canonical "inside Theorem 1" scenario: a dense random graph and a small
/// bias that the theorem still covers.
pub fn dense_scenario(n: usize, seed: u64) -> (CsrGraph, f64) {
    let graph = GraphSpec::DenseForAlpha { n, alpha: 0.75 }
        .generate(&mut StdRng::seed_from_u64(seed))
        .expect("dense graph generation");
    (graph, 0.08)
}

/// A canonical "outside Theorem 1" scenario: a constant-degree torus.
pub fn sparse_scenario(side: usize) -> CsrGraph {
    GraphSpec::Torus2d {
        rows: side,
        cols: side,
    }
    .generate(&mut StdRng::seed_from_u64(0))
    .expect("torus generation")
}

/// Runs a single traced Best-of-Three trajectory from the paper's initial
/// condition and returns the run result.
pub fn traced_run(graph: &CsrGraph, delta: f64, seed: u64) -> RunResult {
    let sim = Engine::on_graph(graph).expect("engine").with_trace(true);
    let mut rng = StdRng::seed_from_u64(seed);
    let init = InitialCondition::BernoulliWithBias { delta }
        .sample(graph, &mut rng)
        .expect("initial condition");
    sim.run(&BestOfThree::new(), init, &mut rng).expect("run")
}

/// Convenience: the mean consensus time of a small Monte-Carlo batch of the
/// given protocol on `graph`.
pub fn mean_consensus_time(
    graph: &CsrGraph,
    protocol: ProtocolSpec,
    delta: f64,
    replicas: usize,
    seed: u64,
) -> Option<f64> {
    let mc = MonteCarlo {
        protocol,
        initial: InitialCondition::BernoulliWithBias { delta },
        schedule: Schedule::Synchronous,
        stopping: StoppingCondition::consensus_within(1_000_000),
        replicas,
        master_seed: seed,
        threads: 0,
        adversary: Vec::new(),
    };
    mc.run(graph).expect("monte carlo").mean_rounds()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builders_produce_usable_graphs() {
        let (g, delta) = dense_scenario(500, 1);
        assert_eq!(g.num_vertices(), 500);
        assert!(delta > 0.0 && delta < 0.5);
        let t = sparse_scenario(10);
        assert_eq!(t.num_vertices(), 100);
    }

    #[test]
    fn traced_run_produces_a_trace() {
        let (g, delta) = dense_scenario(300, 2);
        let run = traced_run(&g, delta, 3);
        assert!(run.trace.is_some());
        assert!(run.reached_consensus());
    }
}
