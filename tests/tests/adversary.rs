//! Adversarial-dynamics regression suite.
//!
//! Pins the `bo3_dynamics::adversary` contract end to end: seq == parallel
//! bit-identical adversarial runs at 1/2/8 threads on materialised and
//! implicit topologies, zero-strength adversaries bit-identical to the
//! unwrapped engine (the "compiles out" guarantee), mechanism semantics
//! (zealots freeze, Byzantine inverts, drop freezes at q = 1, partitions
//! sever inter-block messages), and the counters surfaced through
//! `RunResult`, `MonteCarlo` and `Experiment`.

use bo3_core::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0xAD5E;

fn engine_on<T: Topology>(topo: T, rounds: usize, threads: usize) -> Engine<T> {
    Engine::new(topo)
        .unwrap()
        .with_stopping(StoppingCondition::fixed_rounds(rounds))
        .with_threads(threads)
}

fn prefix_blue(n: usize, blue: usize) -> Configuration {
    let mut config = Configuration::all_red(n);
    for v in 0..blue {
        config.set(v, Opinion::Blue);
    }
    config
}

fn all_adversaries() -> Vec<Vec<AdversarySpec>> {
    vec![
        vec![AdversarySpec::Zealots { fraction: 0.05 }],
        vec![AdversarySpec::ZealotIds {
            vertices: vec![1, 4_096, 8_191],
        }],
        vec![AdversarySpec::Byzantine { fraction: 0.05 }],
        vec![AdversarySpec::Drop { q: 0.15 }],
        vec![AdversarySpec::Partition {
            from_round: 1,
            until_round: 3,
            blocks: 2,
        }],
        // The composed stack: every mechanism at once.
        vec![
            AdversarySpec::Zealots { fraction: 0.03 },
            AdversarySpec::Byzantine { fraction: 0.03 },
            AdversarySpec::Drop { q: 0.1 },
            AdversarySpec::Partition {
                from_round: 0,
                until_round: 2,
                blocks: 2,
            },
        ],
    ]
}

// --- seq == parallel determinism ----------------------------------------

#[test]
fn adversarial_runs_are_thread_invariant_on_implicit_topologies() {
    // n = 9_000 spans multiple 4096-vertex kernel chunks, so a
    // chunk-boundary or thread-scheduling regression cannot hide inside one
    // work unit.
    let n = 9_000;
    for specs in all_adversaries() {
        let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
        let adv = Adversary::build(&specs, n, SEED).unwrap();
        let run_with = |threads: usize| {
            engine_on(ImplicitSbm::new(n, 2, 0.5, 0.4, 31).unwrap(), 5, threads)
                .with_adversary(adv.clone())
                .run_seeded_kind(ProtocolKind::BestOfThree, prefix_blue(n, n / 2 - 300), 42)
                .unwrap()
        };
        let one = run_with(1);
        assert_eq!(one, run_with(2), "{labels:?}");
        assert_eq!(one, run_with(8), "{labels:?}");
        assert!(one.adversary.is_some(), "{labels:?}");
    }
}

#[test]
fn adversarial_runs_are_thread_invariant_on_materialised_graphs() {
    let graph = GraphSpec::DenseForAlpha {
        n: 9_000,
        alpha: 0.8,
    }
    .generate(&mut StdRng::seed_from_u64(3))
    .unwrap();
    for specs in all_adversaries() {
        let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
        let adv = Adversary::build(&specs, graph.num_vertices(), SEED).unwrap();
        let run_with = |threads: usize| {
            engine_on(CsrTopology::new(&graph), 5, threads)
                .with_adversary(adv.clone())
                .run_seeded_kind(
                    ProtocolKind::BestOfThree,
                    prefix_blue(graph.num_vertices(), 4_200),
                    42,
                )
                .unwrap()
        };
        let one = run_with(1);
        assert_eq!(one, run_with(2), "{labels:?}");
        assert_eq!(one, run_with(8), "{labels:?}");
    }
}

#[test]
fn adversarial_async_runs_are_reproducible() {
    // Asynchronous rounds are sequential by definition; pin that the
    // adversarial async path is deterministic in the seed and indifferent
    // to the configured worker count.
    let n = 9_000;
    for specs in all_adversaries() {
        let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
        let adv = Adversary::build(&specs, n, SEED).unwrap();
        let run_with = |threads: usize| {
            engine_on(Complete::new(n).unwrap(), 4, threads)
                .with_schedule(Schedule::AsynchronousRandomOrder)
                .with_adversary(adv.clone())
                .run_seeded_kind(ProtocolKind::BestOfThree, prefix_blue(n, 4_000), 9)
                .unwrap()
        };
        let one = run_with(1);
        assert_eq!(one, run_with(8), "{labels:?}");
    }
}

// --- zero-strength adversaries compile out ------------------------------

#[test]
fn zero_strength_adversaries_are_bit_identical_to_the_unwrapped_engine() {
    let n = 9_000;
    let zero = [
        AdversarySpec::Zealots { fraction: 0.0 },
        AdversarySpec::Byzantine { fraction: 0.0 },
        AdversarySpec::Drop { q: 0.0 },
    ];
    for schedule in [Schedule::Synchronous, Schedule::AsynchronousRandomOrder] {
        let topo = ImplicitGnp::new(n, 0.3, 17).unwrap();
        let honest = engine_on(topo, 6, 4)
            .with_schedule(schedule)
            .run_seeded_kind(ProtocolKind::BestOfThree, prefix_blue(n, 4_200), 77)
            .unwrap();
        let wrapped = engine_on(topo, 6, 4)
            .with_schedule(schedule)
            .with_adversary(Adversary::build(&zero, n, SEED).unwrap())
            .run_seeded_kind(ProtocolKind::BestOfThree, prefix_blue(n, 4_200), 77)
            .unwrap();
        // Same trajectory, draw for draw — only the counters differ.
        assert_eq!(honest.final_blue_fraction, wrapped.final_blue_fraction);
        assert_eq!(honest.rounds, wrapped.rounds);
        assert_eq!(honest.winner, wrapped.winner);
        assert_eq!(honest.adversary, None);
        let counters = wrapped.adversary.unwrap();
        assert_eq!(counters, AdversaryCounters::default());
    }
}

#[test]
fn zero_strength_caller_rng_runs_match_on_materialised_graphs() {
    // The caller-RNG path (Engine::run) must also consume the stream
    // sample-for-sample: identical RunResults from identical StdRng streams.
    let graph = GraphSpec::DenseForAlpha {
        n: 2_000,
        alpha: 0.8,
    }
    .generate(&mut StdRng::seed_from_u64(5))
    .unwrap();
    let n = graph.num_vertices();
    for schedule in [Schedule::Synchronous, Schedule::AsynchronousRandomOrder] {
        let engine = Engine::on_graph(&graph)
            .unwrap()
            .with_schedule(schedule)
            .with_stopping(StoppingCondition::fixed_rounds(5));
        let honest = engine
            .run(
                &BestOfThree::new(),
                prefix_blue(n, 900),
                &mut StdRng::seed_from_u64(12),
            )
            .unwrap();
        let wrapped = Engine::on_graph(&graph)
            .unwrap()
            .with_schedule(schedule)
            .with_stopping(StoppingCondition::fixed_rounds(5))
            .with_adversary(Adversary::build(&[AdversarySpec::Drop { q: 0.0 }], n, SEED).unwrap())
            .run(
                &BestOfThree::new(),
                prefix_blue(n, 900),
                &mut StdRng::seed_from_u64(12),
            )
            .unwrap();
        assert_eq!(honest.final_blue_fraction, wrapped.final_blue_fraction);
        assert_eq!(honest.winner, wrapped.winner);
        assert_eq!(wrapped.adversary.unwrap().dropped_samples, 0);
    }
}

// --- mechanism semantics -------------------------------------------------

#[test]
fn byzantine_inversion_flips_an_all_red_complete_graph_in_one_round() {
    // Every reporter lies, so every sample of a red vertex reads blue: one
    // synchronous Best-of-Three round turns all-red into all-blue.
    let n = 600;
    let adv = Adversary::build(&[AdversarySpec::Byzantine { fraction: 1.0 }], n, SEED).unwrap();
    assert_eq!(adv.byzantine_count(), n);
    let result = engine_on(Complete::new(n).unwrap(), 1, 2)
        .with_adversary(adv)
        .run_seeded_kind(ProtocolKind::BestOfThree, Configuration::all_red(n), 4)
        .unwrap();
    assert_eq!(result.final_blue_fraction, 1.0);
}

#[test]
fn full_drop_freezes_the_configuration_and_counts_every_sample() {
    // q = 1: every sample falls back to self-opinion, so nothing can move,
    // and the counter records exactly n · k · rounds lost samples.
    let n = 500;
    let rounds = 3usize;
    let adv = Adversary::build(&[AdversarySpec::Drop { q: 1.0 }], n, SEED).unwrap();
    let initial = prefix_blue(n, 123);
    let result = engine_on(Complete::new(n).unwrap(), rounds, 2)
        .with_adversary(adv)
        .run_seeded_kind(ProtocolKind::BestOfThree, initial.clone(), 4)
        .unwrap();
    assert_eq!(result.final_blue_fraction, initial.blue_fraction());
    assert_eq!(
        result.adversary.unwrap().dropped_samples,
        (n * 3 * rounds) as u64
    );
}

#[test]
fn partitions_sever_inter_block_messages_while_active() {
    // Two SBM blocks, block 0 all blue, block 1 all red.  While the
    // partition is active every cross-block sample is lost, so each block
    // only ever hears its own unanimous colour and the configuration is a
    // fixed point; the moment it heals, cross-block traffic resumes.
    let n = 2_000;
    let topo = ImplicitSbm::new(n, 2, 0.5, 0.4, 7).unwrap();
    let partition = AdversarySpec::Partition {
        from_round: 0,
        until_round: 4,
        blocks: 2,
    };
    let adv = Adversary::build(&[partition], n, SEED).unwrap();
    let frozen = engine_on(topo, 4, 2)
        .with_adversary(adv.clone())
        .run_seeded_kind(ProtocolKind::BestOfThree, prefix_blue(n, n / 2), 11)
        .unwrap();
    assert_eq!(
        frozen.final_blue_fraction, 0.5,
        "a severed 50/50 split must not move"
    );
    let counters = frozen.adversary.unwrap();
    assert_eq!(counters.partition_rounds, 4);
    assert!(counters.dropped_samples > 0, "p_out samples must be lost");
    // One round past the healing point, cross-block samples flow again and
    // the dead heat starts resolving.
    let healed = engine_on(topo, 8, 2)
        .with_adversary(adv)
        .run_seeded_kind(ProtocolKind::BestOfThree, prefix_blue(n, n / 2), 11)
        .unwrap();
    assert!(
        (healed.final_blue_fraction - 0.5).abs() > 1e-9,
        "after healing the configuration must move"
    );
    assert_eq!(healed.adversary.unwrap().partition_rounds, 4);
}

#[test]
fn counters_surface_through_monte_carlo_and_experiment() {
    let mut mc = MonteCarlo::best_of_three(0.1, 4, 3);
    mc.stopping = StoppingCondition::fixed_rounds(3);
    mc.adversary = vec![
        AdversarySpec::Zealots { fraction: 0.1 },
        AdversarySpec::Drop { q: 0.2 },
    ];
    let topo = Complete::new(1_000).unwrap();
    let report = mc.run_on_topology(&topo).unwrap();
    let total = report.adversary.unwrap();
    assert!(total.zealots > 0);
    assert!(total.dropped_samples > 0);
    // Membership is fixed across replicas (max-merged), events accumulate.
    let per_replica: Vec<AdversaryCounters> = report
        .outcomes
        .iter()
        .map(|o| o.adversary.unwrap())
        .collect();
    assert!(per_replica.iter().all(|c| c.zealots == total.zealots));
    assert_eq!(
        per_replica.iter().map(|c| c.dropped_samples).sum::<u64>(),
        total.dropped_samples
    );
    // Replicas draw their drop coins from distinct streams.
    assert!(
        per_replica
            .windows(2)
            .any(|w| w[0].dropped_samples != w[1].dropped_samples),
        "{per_replica:?}"
    );

    // The same scenario through the Experiment surface.
    let result = Experiment::on(TopologySpec::Complete { n: 1_000 })
        .named("adversary/counters")
        .stopping(StoppingCondition::fixed_rounds(3))
        .adversary(AdversarySpec::Zealots { fraction: 0.1 })
        .adversary(AdversarySpec::Drop { q: 0.2 })
        .replicas(4)
        .seed(3)
        .run()
        .unwrap();
    let counters = result.adversary_counters().unwrap();
    assert!(counters.zealots > 0);
    assert!(counters.dropped_samples > 0);
}

#[test]
fn monte_carlo_adversarial_batches_are_thread_invariant() {
    let topo = ImplicitGnp::new(1_500, 0.4, 31).unwrap();
    let mut mc = MonteCarlo::best_of_three(0.12, 8, 5);
    mc.adversary = vec![
        AdversarySpec::Zealots { fraction: 0.05 },
        AdversarySpec::Drop { q: 0.1 },
    ];
    mc.threads = 1;
    let seq = mc.run_on_topology(&topo).unwrap();
    mc.threads = 4;
    let par = mc.run_on_topology(&topo).unwrap();
    assert_eq!(seq.outcomes, par.outcomes);
    assert_eq!(seq.adversary, par.adversary);
}

#[test]
fn custom_dyn_protocols_reject_adversaries_with_a_typed_error() {
    let graph = GraphSpec::Complete { n: 50 }
        .generate(&mut StdRng::seed_from_u64(0))
        .unwrap();
    let engine = Engine::on_graph(&graph)
        .unwrap()
        .with_adversary(Adversary::build(&[AdversarySpec::Drop { q: 0.5 }], 50, SEED).unwrap());
    let dyn_only = DynOnly(BestOfThree::new());
    let err = engine
        .run(
            &dyn_only,
            Configuration::all_red(50),
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap_err();
    assert!(
        matches!(err, DynamicsError::InvalidParameter { .. }),
        "{err}"
    );
}

// --- zealots never change (proptest) -------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn zealot_opinions_never_change(
        fraction in 0.0f64..0.5,
        blue in 0usize..800,
        seed in any::<u64>(),
        q in 0.0f64..0.5,
    ) {
        let n = 800;
        let topo = Complete::new(n).unwrap();
        let adv = Adversary::build(
            &[
                AdversarySpec::Zealots { fraction },
                AdversarySpec::Drop { q },
            ],
            n,
            seed,
        )
        .unwrap();
        let zealots: Vec<usize> = (0..n).filter(|&v| adv.is_zealot(v)).collect();
        prop_assert_eq!(zealots.len(), adv.zealot_count());
        let engine = Engine::new(&topo)
            .unwrap()
            .with_stopping(StoppingCondition::fixed_rounds(1))
            .with_adversary(adv);
        // Step round by round so the invariant is checked at every point of
        // the trajectory, not just at the end.
        let initial = prefix_blue(n, blue);
        let frozen: Vec<Opinion> = zealots.iter().map(|&v| initial.get(v)).collect();
        let mut current = initial;
        let mut next: Vec<Opinion> = Vec::new();
        for round in 0..6u64 {
            engine.step_seeded_kind(ProtocolKind::BestOfThree, &current, &mut next, seed, round);
            current.overwrite_from(&next);
            for (&v, &opinion) in zealots.iter().zip(frozen.iter()) {
                prop_assert_eq!(current.get(v), opinion, "round {} vertex {}", round, v);
            }
        }
    }
}
