//! Cross-crate behavioural comparisons: protocol baselines and the
//! synchronous/asynchronous and sequential/parallel ablations.

use bo3_core::prelude::*;
use bo3_integration::{dense_scenario, mean_consensus_time};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn voter_model_is_an_order_of_magnitude_slower() {
    let (graph, delta) = dense_scenario(600, 1);
    let bo3 = mean_consensus_time(&graph, ProtocolSpec::BestOfThree, delta, 3, 1).unwrap();
    let voter = mean_consensus_time(&graph, ProtocolSpec::Voter, delta, 2, 1).unwrap();
    assert!(voter > 10.0 * bo3, "voter {voter} vs best-of-3 {bo3}");
}

#[test]
fn best_of_two_and_three_are_comparable() {
    let (graph, delta) = dense_scenario(2_000, 2);
    let bo2 = mean_consensus_time(
        &graph,
        ProtocolSpec::BestOfTwo {
            tie_rule: TieRule::KeepOwn,
        },
        delta,
        4,
        2,
    )
    .unwrap();
    let bo3 = mean_consensus_time(&graph, ProtocolSpec::BestOfThree, delta, 4, 2).unwrap();
    assert!((bo2 - bo3).abs() <= 4.0, "bo2 {bo2} vs bo3 {bo3}");
}

#[test]
fn local_majority_is_the_speed_limit() {
    let (graph, delta) = dense_scenario(2_000, 3);
    let majority = mean_consensus_time(
        &graph,
        ProtocolSpec::LocalMajority {
            tie_rule: TieRule::KeepOwn,
        },
        delta,
        4,
        3,
    )
    .unwrap();
    let bo3 = mean_consensus_time(&graph, ProtocolSpec::BestOfThree, delta, 4, 3).unwrap();
    assert!(majority <= bo3 + 0.5, "majority {majority} vs bo3 {bo3}");
    assert!(majority <= 3.0);
}

#[test]
fn asynchronous_schedule_still_converges_to_red() {
    let (graph, delta) = dense_scenario(1_200, 4);
    let mc = MonteCarlo {
        protocol: ProtocolSpec::BestOfThree,
        initial: InitialCondition::BernoulliWithBias { delta },
        schedule: Schedule::AsynchronousRandomOrder,
        stopping: StoppingCondition::consensus_within(10_000),
        replicas: 4,
        master_seed: 4,
        threads: 0,
        adversary: Vec::new(),
    };
    let report = mc.run(&graph).unwrap();
    assert!((report.consensus_rate - 1.0).abs() < 1e-12);
    let red = report.red_win.unwrap();
    assert_eq!(red.successes, red.trials);
}

#[test]
fn parallel_stepper_agrees_with_itself_across_thread_counts() {
    let (graph, delta) = dense_scenario(3_000, 5);
    let mut rng = StdRng::seed_from_u64(6);
    let init = InitialCondition::BernoulliWithBias { delta }
        .sample(&graph, &mut rng)
        .unwrap();
    let run = |threads: usize| {
        ParallelSimulator::new(&graph, threads)
            .unwrap()
            .with_trace(true)
            .run(&BestOfThree::new(), init.clone(), 777)
            .unwrap()
    };
    let one = run(1);
    let many = run(6);
    assert_eq!(one, many);
    assert!(one.red_won());
}

#[test]
fn sampling_without_replacement_changes_little_on_dense_graphs() {
    // Ablation: the paper samples *with* replacement; on dense graphs the
    // difference is negligible. We approximate "without replacement" by the
    // local-majority-of-3-distinct-samples protocol implemented via
    // NeighbourSampler::sample_without_replacement and compare one-round
    // statistics on the complete graph.
    let graph = GraphSpec::Complete { n: 2_000 }
        .generate(&mut StdRng::seed_from_u64(7))
        .unwrap();
    let sampler = NeighbourSampler::new(&graph).unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    let blue_share = 0.4;
    let blue_count = (2_000.0 * blue_share) as usize;
    let opinions: Vec<Opinion> = (0..2_000)
        .map(|v| {
            if v < blue_count {
                Opinion::Blue
            } else {
                Opinion::Red
            }
        })
        .collect();
    let trials = 20_000;
    let mut with_repl_blue = 0usize;
    let mut without_repl_blue = 0usize;
    use rand::Rng;
    for _ in 0..trials {
        let v = 1_999; // a red vertex
        let picks: [usize; 3] = {
            let mut out = [0usize; 3];
            for slot in &mut out {
                let i = rng.gen_range(0..sampler.graph().degree(v));
                *slot = sampler.graph().neighbour_at(v, i);
            }
            out
        };
        if picks.iter().filter(|&&w| opinions[w].is_blue()).count() >= 2 {
            with_repl_blue += 1;
        }
        let distinct = sampler.sample_without_replacement(v, 3, &mut rng);
        if distinct.iter().filter(|&&w| opinions[w].is_blue()).count() >= 2 {
            without_repl_blue += 1;
        }
    }
    let a = with_repl_blue as f64 / trials as f64;
    let b = without_repl_blue as f64 / trials as f64;
    assert!((a - b).abs() < 0.02, "with {a} vs without {b}");
}
