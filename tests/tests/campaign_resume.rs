//! Kill-point sweep for the checkpointable engine and the crash-safe
//! campaign runner.
//!
//! The crash-safety claim is absolute: a run paused at *any* round
//! boundary and resumed — in the same process or from re-parsed JSON, at
//! any thread count — finishes bit-identically to the uninterrupted run,
//! and a campaign killed between or inside cells regenerates byte-identical
//! artefacts.  This suite sweeps every kill point instead of sampling a
//! few: for an `R`-round run it pauses once at each `k ∈ 0..R`, resumes,
//! and compares full [`RunResult`] equality (winner, rounds, fractions and
//! the entire per-round trace).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bo3_core::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0xC4A5;

/// A run long enough to have interesting kill points but quick enough to
/// sweep exhaustively.
const N: usize = 3_000;

fn initial(n: usize) -> Configuration {
    // Deterministic prefix start: no RNG involved, so every engine in a
    // comparison starts from the same configuration by construction.
    let mut config = Configuration::all_red(n);
    for v in 0..(2 * n / 5) {
        config.set(v, Opinion::Blue);
    }
    config
}

fn adversary_stack(n: usize) -> Adversary {
    Adversary::build(
        &[
            AdversarySpec::Zealots { fraction: 0.01 },
            AdversarySpec::Drop { q: 0.05 },
        ],
        n,
        SEED ^ 0xAD,
    )
    .expect("adversary stack")
    .with_stream_seed(SEED ^ 0x5EED)
}

/// Runs the same seeded scenario uninterrupted, then once per kill point
/// `k`: pause after `k` rounds, resume to the end, demand equality.
fn sweep_kill_points<T: Topology + Sync>(
    make_engine: &dyn Fn() -> Engine<T>,
    kind: ProtocolKind,
    label: &str,
) {
    let n = make_engine().topology().n();
    let reference = make_engine()
        .run_seeded_kind(kind, initial(n), SEED)
        .expect("uninterrupted run");
    assert!(reference.rounds > 2, "{label}: sweep needs a few rounds");

    for k in 0..=reference.rounds {
        let outcome = make_engine()
            .run_seeded_kind_budgeted(kind, initial(n), SEED, &RunBudget::rounds_per_slice(k))
            .unwrap_or_else(|e| panic!("{label}: budgeted run at k={k}: {e}"));
        match outcome {
            RunOutcome::Completed(result) => {
                // Only a slice at least as long as the whole run completes.
                assert!(k >= reference.rounds, "{label}: completed early at k={k}");
                assert_eq!(result, reference, "{label}: complete-in-slice k={k}");
            }
            RunOutcome::Paused(checkpoint) => {
                assert_eq!(checkpoint.round, k, "{label}: paused at wrong round");
                let resumed = make_engine()
                    .resume_to_end(&checkpoint)
                    .unwrap_or_else(|e| panic!("{label}: resume at k={k}: {e}"));
                assert_eq!(resumed, reference, "{label}: kill point k={k}");
            }
        }
    }
}

#[test]
fn every_kill_point_resumes_bit_identically_on_implicit_topologies() {
    for schedule in [Schedule::Synchronous, Schedule::AsynchronousRandomOrder] {
        for threads in [1usize, 2, 8] {
            let make = move || {
                Engine::new(Complete::new(N).unwrap())
                    .unwrap()
                    .with_schedule(schedule)
                    .with_stopping(StoppingCondition::consensus_within(200))
                    .with_threads(threads)
                    .with_trace(true)
            };
            sweep_kill_points(
                &make,
                ProtocolKind::BestOfThree,
                &format!("complete/{}/t{threads}", schedule.label()),
            );
        }
    }
}

#[test]
fn every_kill_point_resumes_bit_identically_on_materialised_graphs() {
    let graph = GraphSpec::ErdosRenyiGnp { n: N, p: 0.3 }
        .generate(&mut StdRng::seed_from_u64(SEED))
        .expect("graph");
    for schedule in [Schedule::Synchronous, Schedule::AsynchronousRandomOrder] {
        for threads in [1usize, 2, 8] {
            let graph = &graph;
            let make = move || {
                Engine::new(CsrTopology::new(graph))
                    .unwrap()
                    .with_schedule(schedule)
                    .with_stopping(StoppingCondition::consensus_within(200))
                    .with_threads(threads)
                    .with_trace(true)
            };
            sweep_kill_points(
                &make,
                ProtocolKind::BestOfThree,
                &format!("csr/{}/t{threads}", schedule.label()),
            );
        }
    }
}

#[test]
fn kill_points_survive_an_adversary_stack() {
    for schedule in [Schedule::Synchronous, Schedule::AsynchronousRandomOrder] {
        let make = move || {
            Engine::new(Complete::new(N).unwrap())
                .unwrap()
                .with_schedule(schedule)
                .with_stopping(StoppingCondition::consensus_within(200))
                .with_threads(2)
                .with_trace(true)
                .with_adversary(adversary_stack(N))
        };
        sweep_kill_points(
            &make,
            ProtocolKind::BestOfThree,
            &format!("adversary/{}", schedule.label()),
        );
    }
}

#[test]
fn single_round_slices_and_json_round_trips_compose() {
    // Drive a run one round at a time; at every pause, push the checkpoint
    // through its JSON form (as the campaign runner does on disk) before
    // resuming — the serialised path must be exactly the in-memory path.
    let make = || {
        Engine::new(Complete::new(N).unwrap())
            .unwrap()
            .with_stopping(StoppingCondition::consensus_within(200))
            .with_threads(2)
            .with_trace(true)
    };
    let reference = make()
        .run_seeded_kind(ProtocolKind::BestOfThree, initial(N), SEED)
        .expect("reference");
    let budget = RunBudget::rounds_per_slice(1);
    let mut outcome = make()
        .run_seeded_kind_budgeted(ProtocolKind::BestOfThree, initial(N), SEED, &budget)
        .expect("first slice");
    let mut slices = 1;
    let result = loop {
        match outcome {
            RunOutcome::Completed(result) => break result,
            RunOutcome::Paused(checkpoint) => {
                let reparsed = RunCheckpoint::from_json_str(&checkpoint.to_json_string())
                    .expect("checkpoint JSON round-trip");
                assert_eq!(reparsed, *checkpoint);
                slices += 1;
                outcome = make().resume(&reparsed, &budget).expect("resume slice");
            }
        }
    };
    assert_eq!(result, reference);
    // The slice that runs the final round sees the stop condition in the
    // same call (stop-check precedes pause-check), so: one slice per round.
    assert_eq!(slices, reference.rounds, "one slice per round");
}

#[test]
fn cancel_flag_pauses_immediately_and_resume_completes() {
    let cancel = Arc::new(AtomicBool::new(true));
    let budget = RunBudget::unlimited().with_cancel_flag(cancel.clone());
    let make = || {
        Engine::new(Complete::new(N).unwrap())
            .unwrap()
            .with_stopping(StoppingCondition::consensus_within(200))
            .with_trace(true)
    };
    let checkpoint = make()
        .run_seeded_kind_budgeted(ProtocolKind::BestOfThree, initial(N), SEED, &budget)
        .expect("cancelled run")
        .paused()
        .expect("a pre-set cancel flag pauses before round 1");
    assert_eq!(checkpoint.round, 0);
    cancel.store(false, Ordering::SeqCst);
    let resumed = make().resume_to_end(&checkpoint).expect("resume");
    let reference = make()
        .run_seeded_kind(ProtocolKind::BestOfThree, initial(N), SEED)
        .expect("reference");
    assert_eq!(resumed, reference);
}

// --- campaign-level kill points -----------------------------------------

fn surface_campaign(name: &str) -> Campaign {
    let cell = |ratio: f64| {
        Experiment::on(TopologySpec::ImplicitSbm {
            n: 2_000,
            blocks: 2,
            p_in: 0.5 * ratio / (0.5 * (1.0 + ratio)),
            p_out: 0.5 / (0.5 * (1.0 + ratio)),
        })
        .named(format!("resume/r{ratio}"))
        .initial(InitialCondition::PrefixBlue { blue: 900 })
        .stopping(StoppingCondition::consensus_within(24))
        .replicas(2)
        .threads(2)
    };
    Campaign::new(name, SEED)
        .add_cell(cell(2.0))
        .add_cell(cell(8.0))
}

#[test]
fn a_campaign_killed_at_a_random_point_resumes_to_identical_bytes() {
    let oneshot_dir =
        std::env::temp_dir().join(format!("bo3_resume_oneshot_{}", std::process::id()));
    let killed_dir = std::env::temp_dir().join(format!("bo3_resume_killed_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&oneshot_dir);
    let _ = std::fs::remove_dir_all(&killed_dir);

    let oneshot = CampaignRunner::new(surface_campaign("resume/sweep"), &oneshot_dir);
    assert_eq!(oneshot.run().unwrap(), CampaignOutcome::Completed);

    // Kill at an *uncontrolled* point: tiny slices plus a concurrent
    // cancellation land the interrupt wherever the race says — mid-cell,
    // between cells, or never.  Whatever happened, a fresh runner (as a
    // restarted process) must finish with byte-identical artefacts.
    let killed =
        CampaignRunner::new(surface_campaign("resume/sweep"), &killed_dir).rounds_per_slice(1);
    let cancel = killed.cancel_flag();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(5));
        cancel.store(true, Ordering::SeqCst);
    });
    let first = killed.run().unwrap();
    killer.join().unwrap();
    if first == CampaignOutcome::Interrupted {
        let resumed = CampaignRunner::new(surface_campaign("resume/sweep"), &killed_dir);
        assert_eq!(resumed.run().unwrap(), CampaignOutcome::Completed);
    }

    for index in 0..2 {
        assert_eq!(
            std::fs::read_to_string(oneshot.cell_path(index)).unwrap(),
            std::fs::read_to_string(killed_dir.join(format!("cell_{index:04}.json"))).unwrap(),
            "cell {index}"
        );
    }
    let _ = std::fs::remove_dir_all(&oneshot_dir);
    let _ = std::fs::remove_dir_all(&killed_dir);
}

#[test]
fn a_campaign_interrupted_at_every_cell_boundary_resumes_identically() {
    // Deterministic counterpart of the racy test above: interrupt exactly
    // before cell 0, then exactly before cell 1 (by cancelling after the
    // manifest shows one Done), then finish.
    let reference_dir = std::env::temp_dir().join(format!("bo3_resume_ref_{}", std::process::id()));
    let stepped_dir = std::env::temp_dir().join(format!("bo3_resume_step_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&reference_dir);
    let _ = std::fs::remove_dir_all(&stepped_dir);

    let reference = CampaignRunner::new(surface_campaign("resume/steps"), &reference_dir);
    assert_eq!(reference.run().unwrap(), CampaignOutcome::Completed);

    // Boundary 0: cancelled before anything ran.
    let runner = CampaignRunner::new(surface_campaign("resume/steps"), &stepped_dir);
    runner.cancel_flag().store(true, Ordering::SeqCst);
    assert_eq!(runner.run().unwrap(), CampaignOutcome::Interrupted);
    assert!(!stepped_dir.join("cell_0000.json").exists());

    // Run again without cancelling: completes both cells.  (Cell-boundary
    // pauses inside a running campaign are exercised by the racy test; the
    // invariant here is that restarts from each boundary state converge.)
    let runner = CampaignRunner::new(surface_campaign("resume/steps"), &stepped_dir);
    assert_eq!(runner.run().unwrap(), CampaignOutcome::Completed);

    for index in 0..2 {
        assert_eq!(
            std::fs::read_to_string(reference.cell_path(index)).unwrap(),
            std::fs::read_to_string(stepped_dir.join(format!("cell_{index:04}.json"))).unwrap(),
            "cell {index}"
        );
    }
    let _ = std::fs::remove_dir_all(&reference_dir);
    let _ = std::fs::remove_dir_all(&stepped_dir);
}

// --- randomized round-trips ---------------------------------------------

fn arb_status() -> impl Strategy<Value = CellStatus> {
    prop_oneof![
        Just(CellStatus::Pending),
        Just(CellStatus::Done),
        (0u32..10).prop_map(|attempts| CellStatus::InFlight { attempts }),
        (0u32..1000).prop_map(|i| CellStatus::Skipped {
            reason: format!("cell error {i}")
        }),
    ]
}

fn arb_checkpoint() -> impl Strategy<Value = RunCheckpoint> {
    (
        1usize..200,
        any::<u64>(),
        0usize..50,
        proptest::collection::vec(any::<u64>(), 0..4),
        0.0f64..1.0,
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(n, seed, round, extra, blue0, dropped, sync)| {
            let words = n.div_ceil(64);
            let mut opinion_words: Vec<u64> = extra.into_iter().cycle().take(words).collect();
            opinion_words.resize(words, 0);
            if n % 64 != 0 {
                if let Some(last) = opinion_words.last_mut() {
                    *last &= (1u64 << (n % 64)) - 1;
                }
            }
            RunCheckpoint {
                version: RUN_CHECKPOINT_VERSION,
                protocol: ProtocolKind::BestOfThree,
                schedule: if sync {
                    Schedule::Synchronous
                } else {
                    Schedule::AsynchronousRandomOrder
                },
                stopping: StoppingCondition::consensus_within(1 + round * 2),
                master_seed: seed,
                round,
                n,
                opinion_words,
                initial_blue_fraction: blue0,
                dropped_samples: dropped,
                trace: None,
            }
        })
}

proptest! {
    #[test]
    fn manifest_json_round_trips(
        statuses in proptest::collection::vec(arb_status(), 0..12),
        metas in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u64>()),
            0..12,
        ),
        seed in any::<u64>(),
        name_tag in 0u32..1000,
    ) {
        // The meta array must stay aligned with the statuses array.
        let cells: Vec<CellMeta> = statuses
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let (attempts, resumes, wall_ms) =
                    metas.get(i).copied().unwrap_or((0, 0, 0));
                CellMeta { attempts, resumes, wall_ms }
            })
            .collect();
        let manifest = CampaignManifest {
            version: CAMPAIGN_MANIFEST_VERSION,
            name: format!("campaign/{name_tag}"),
            campaign_seed: seed,
            statuses,
            cells,
        };
        let reparsed = CampaignManifest::from_json_str(&manifest.to_json_string()).unwrap();
        prop_assert_eq!(reparsed, manifest);
    }

    #[test]
    fn checkpoint_json_round_trips(checkpoint in arb_checkpoint()) {
        let reparsed = RunCheckpoint::from_json_str(&checkpoint.to_json_string()).unwrap();
        prop_assert_eq!(&reparsed, &checkpoint);
        // And through a batch wrapper, as written to disk by the runner.
        let batch = bo3_dynamics::montecarlo::BatchCheckpoint {
            version: bo3_dynamics::montecarlo::BATCH_CHECKPOINT_VERSION,
            completed: vec![],
            current: Some(checkpoint),
        };
        let reparsed = bo3_dynamics::montecarlo::BatchCheckpoint::from_json_str(
            &batch.to_json_string(),
        )
        .unwrap();
        prop_assert_eq!(reparsed, batch);
    }

    #[test]
    fn packed_opinions_round_trip(bits in proptest::collection::vec(any::<bool>(), 1..300)) {
        let opinions: Vec<Opinion> = bits
            .iter()
            .map(|&b| if b { Opinion::Blue } else { Opinion::Red })
            .collect();
        let unpacked = unpack_opinions(&pack_opinions(&opinions), opinions.len()).unwrap();
        prop_assert_eq!(unpacked, opinions);
    }
}
