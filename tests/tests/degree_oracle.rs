//! Property-based coverage of the degree oracle
//! (`bo3_graph::oracle::DegreeOracle`).
//!
//! Two halves, matching the two oracle flavours:
//!
//! * **exact** — on `Complete` / `CompleteBipartite` /
//!   `CompleteMultipartite` the oracle's per-vertex degrees, quantiles and
//!   rank prefixes are pinned against the `Θ(n)` degree scan (and a stable
//!   degree sort) it exists to replace;
//! * **window** — on `ImplicitGnp` / `ImplicitSbm` the Bernstein
//!   concentration window must contain every realised degree.  The oracle
//!   documents a simultaneous failure probability of at most
//!   `DEGREE_ORACLE_FAILURE_PROBABILITY` (= 10⁻⁶) per topology; across the
//!   few hundred random topologies this suite draws, the chance of *any*
//!   assertion failing is therefore below ~10⁻⁴ — a flake rate far beyond
//!   anything CI can observe.

use bo3_core::prelude::*;
use bo3_graph::{DegreeOracle, DEGREE_ORACLE_FAILURE_PROBABILITY};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy over the closed-form implicit specs (exact oracles).
fn closed_form_strategy() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        (2usize..200).prop_map(|n| TopologySpec::Complete { n }),
        (1usize..60, 1usize..60).prop_map(|(a, b)| TopologySpec::CompleteBipartite { a, b }),
        proptest::collection::vec(1usize..25, 2..6)
            .prop_map(|blocks| TopologySpec::CompleteMultipartite { blocks }),
    ]
}

/// Strategy over hash-defined implicit specs (window oracles), sized so the
/// degree scan used as ground truth stays cheap.
fn hash_defined_strategy() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        (50usize..400, 0.1f64..0.9).prop_map(|(n, p)| TopologySpec::ImplicitGnp { n, p }),
        (2usize..5, 20usize..90, 0.1f64..0.9, 0.1f64..0.9).prop_map(
            |(blocks, block_size, p_in, p_out)| TopologySpec::ImplicitSbm {
                n: blocks * block_size,
                blocks,
                p_in,
                p_out,
            }
        ),
    ]
}

fn scanned_degrees(built: &BuiltTopology) -> Vec<usize> {
    (0..built.n()).map(|v| built.degree(v)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_oracles_agree_with_the_scan_they_replace(
        spec in closed_form_strategy(),
        seed in any::<u64>(),
        q in 0.0f64..=1.0,
    ) {
        let built = spec.build(seed).unwrap();
        let oracle = built.degree_oracle().expect("closed forms have an oracle");
        prop_assert!(oracle.is_exact());
        prop_assert!(oracle.failure_probability() == 0.0);
        let degrees = scanned_degrees(&built);
        prop_assert_eq!(oracle.n(), degrees.len());
        // Per-vertex degrees are exact.
        for (v, &d) in degrees.iter().enumerate() {
            prop_assert_eq!(oracle.degree_bounds(v), (d, d), "vertex {}", v);
        }
        // Quantiles walk the same sorted multiset as the scan.
        let mut sorted = degrees;
        sorted.sort_unstable();
        let k = ((q * (sorted.len() - 1) as f64).floor() as usize).min(sorted.len() - 1);
        prop_assert_eq!(oracle.quantile(q), (sorted[k], sorted[k]));
    }

    #[test]
    fn exact_rank_prefixes_match_a_stable_degree_sort(
        spec in closed_form_strategy(),
        seed in any::<u64>(),
        count_frac in 0.0f64..=1.0,
        highest in any::<bool>(),
    ) {
        let built = spec.build(seed).unwrap();
        let oracle = built.degree_oracle().unwrap();
        let degrees = scanned_degrees(&built);
        let n = degrees.len();
        let count = ((count_frac * n as f64) as usize).min(n);
        // Ground truth: the stable sort `InitialCondition::{Highest,Lowest}-
        // DegreeBlue` performs on a materialised graph.
        let mut by_deg: Vec<usize> = (0..n).collect();
        if highest {
            by_deg.sort_by_key(|&v| std::cmp::Reverse(degrees[v]));
        } else {
            by_deg.sort_by_key(|&v| degrees[v]);
        }
        let mut expected: Vec<usize> = by_deg[..count].to_vec();
        expected.sort_unstable();
        let ranges = oracle.ranked_vertices(count, highest);
        let mut got: Vec<usize> = ranges.iter().cloned().flatten().collect();
        // Ranges are disjoint (no vertex double-counted).
        prop_assert_eq!(got.len(), count);
        got.sort_unstable();
        got.dedup();
        prop_assert_eq!(got.len(), count);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn degree_ranked_placement_matches_between_oracle_and_materialisation(
        spec in closed_form_strategy(),
        seed in any::<u64>(),
        blue_frac in 0.0f64..=1.0,
        highest in any::<bool>(),
    ) {
        let built = spec.build(seed).unwrap();
        let n = built.n();
        let blue = ((blue_frac * n as f64) as usize).min(n);
        let cond = if highest {
            InitialCondition::HighestDegreeBlue { blue }
        } else {
            InitialCondition::LowestDegreeBlue { blue }
        };
        let graph = bo3_graph::topology::materialize(&built).unwrap();
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        let via_oracle = cond.sample_topology(&built, &mut rng_a).unwrap();
        let via_graph = cond.sample(&graph, &mut rng_b).unwrap();
        prop_assert_eq!(via_oracle, via_graph);
    }

    #[test]
    fn concentration_windows_contain_every_realised_degree(
        spec in hash_defined_strategy(),
        seed in any::<u64>(),
    ) {
        let built = spec.build(seed).unwrap();
        let oracle = built.degree_oracle().expect("hash-defined families have an oracle");
        let DegreeOracle::Window(window) = &oracle else {
            panic!("expected a window oracle for {}", built.label());
        };
        prop_assert!(window.failure_probability <= DEGREE_ORACLE_FAILURE_PROBABILITY);
        prop_assert!(window.lo as f64 <= window.mean && window.mean <= window.hi as f64);
        prop_assert!(window.hi < built.n());
        for (v, d) in scanned_degrees(&built).into_iter().enumerate() {
            prop_assert!(
                (window.lo..=window.hi).contains(&d),
                "vertex {} degree {} outside [{}, {}] (p_fail {})",
                v, d, window.lo, window.hi, window.failure_probability,
            );
        }
        // Every rank query stays answerable, as the canonical prefix.
        let half = built.n() / 2;
        prop_assert_eq!(oracle.ranked_vertices(half, true), vec![0..half]);
    }
}
