//! Regression suite for the determinism contract documented in
//! `crates/dynamics/src/parallel.rs`: every chunk of a synchronous round
//! derives its RNG from `(master_seed, round, chunk)`, so the simulation
//! output is bit-for-bit identical regardless of how many worker threads run
//! the chunks — and identical to a sequential run using the same derivation.

use bo3_core::prelude::*;
use bo3_integration::dense_scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MASTER_SEED: u64 = 0x00D3_7E12;

/// Builds the initial configuration shared by every run in a comparison.
fn shared_init(graph: &CsrGraph, delta: f64, seed: u64) -> Configuration {
    let mut rng = StdRng::seed_from_u64(seed);
    InitialCondition::BernoulliWithBias { delta }
        .sample(graph, &mut rng)
        .expect("initial condition")
}

#[test]
fn sequential_and_parallel_runs_are_bit_identical_at_1_2_and_8_threads() {
    // A graph larger than one chunk (CHUNK_SIZE = 4096), so the run
    // exercises the chunk → thread round-robin at every thread count.
    let (graph, delta) = dense_scenario(10_000, 42);
    let init = shared_init(&graph, delta, 7);

    let sequential = Simulator::new(&graph)
        .expect("simulator")
        .with_trace(true)
        .run_seeded(&BestOfThree::new(), init.clone(), MASTER_SEED)
        .expect("sequential seeded run");
    assert!(sequential.reached_consensus(), "scenario must converge");

    for threads in [1usize, 2, 8] {
        let parallel = ParallelSimulator::new(&graph, threads)
            .expect("parallel simulator")
            .with_trace(true)
            .run(&BestOfThree::new(), init.clone(), MASTER_SEED)
            .expect("parallel run");
        // `RunResult` equality covers winner, round count, blue fractions
        // and the full per-round trace — bit-identical trajectories.
        assert_eq!(
            sequential, parallel,
            "parallel run with {threads} threads diverged from the sequential run"
        );
    }
}

#[test]
fn every_protocol_honours_the_thread_count_contract() {
    let (graph, delta) = dense_scenario(5_000, 3);
    let init = shared_init(&graph, delta, 11);

    let protocols: Vec<(&str, Box<dyn Protocol + Sync>)> = vec![
        ("voter", Box::new(Voter::new())),
        ("best-of-2", Box::new(BestOfTwo::keep_own())),
        ("best-of-3", Box::new(BestOfThree::new())),
        ("best-of-5", Box::new(BestOfK::new(5, TieRule::KeepOwn))),
        ("local-majority", Box::new(LocalMajority::keep_own())),
    ];
    for (name, protocol) in &protocols {
        // A fixed round budget keeps slow-converging baselines (voter) cheap:
        // the contract under test is trajectory equality, not consensus.
        let run_with = |threads: usize| {
            ParallelSimulator::new(&graph, threads)
                .expect("parallel simulator")
                .with_stopping(StoppingCondition::fixed_rounds(12))
                .with_trace(true)
                .run(protocol.as_ref(), init.clone(), MASTER_SEED)
                .expect("parallel run")
        };
        let one = run_with(1);
        let two = run_with(2);
        let eight = run_with(8);
        assert_eq!(one, two, "{name}: 1-thread vs 2-thread runs diverged");
        assert_eq!(two, eight, "{name}: 2-thread vs 8-thread runs diverged");
    }
}

#[test]
fn distinct_master_seeds_still_give_distinct_runs() {
    // Guards against a regression where the chunk derivation ignores the
    // master seed (everything would trivially be "deterministic").
    let (graph, delta) = dense_scenario(5_000, 5);
    let init = shared_init(&graph, delta, 13);
    let sim = Simulator::new(&graph).expect("simulator").with_trace(true);
    let a = sim
        .run_seeded(&BestOfThree::new(), init.clone(), 1)
        .expect("run");
    let b = sim.run_seeded(&BestOfThree::new(), init, 2).expect("run");
    assert!(
        a.trace != b.trace || a.rounds != b.rounds,
        "different master seeds produced identical trajectories"
    );
}
