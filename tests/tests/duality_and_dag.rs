//! Cross-crate checks of the time-reversal machinery: forward dynamics vs.
//! voting-DAG colouring, sprinkling coupling on generated graphs, and the
//! COBRA-walk correspondence.

use bo3_core::prelude::*;
use bo3_dag::cobra::cobra_walk;
use bo3_dag::colouring::colour_dag;
use bo3_dag::sprinkling::sprinkle;
use bo3_dag::voting_dag::VotingDag;
use bo3_dynamics::opinion::Opinion;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn duality_holds_on_generated_dense_and_sparse_graphs() {
    let mut rng = StdRng::seed_from_u64(0);
    let cases = vec![
        GraphSpec::ErdosRenyiGnp { n: 50, p: 0.3 },
        GraphSpec::RandomRegular { n: 60, d: 6 },
        GraphSpec::Wheel { n: 20 },
    ];
    for spec in cases {
        let graph = spec.generate(&mut rng).unwrap();
        let check = DualityCheck {
            vertex: 1,
            rounds: 3,
            p_blue: 0.4,
            trials: 2_500,
            seed: 11,
        };
        let report = check.run(&graph).unwrap();
        assert!(
            report.consistent(),
            "{}: difference {} vs noise {}",
            spec.label(),
            report.difference,
            report.noise_scale
        );
    }
}

#[test]
fn sprinkling_coupling_holds_on_every_generated_family() {
    let mut rng = StdRng::seed_from_u64(1);
    let specs = vec![
        GraphSpec::Cycle { n: 9 },
        GraphSpec::Complete { n: 7 },
        GraphSpec::Hypercube { dim: 3 },
        GraphSpec::Barbell {
            clique: 4,
            bridge: 1,
        },
    ];
    for spec in specs {
        let graph = spec.generate(&mut rng).unwrap();
        for _ in 0..10 {
            let dag = VotingDag::sample(&graph, 0, 4, &mut rng).unwrap();
            let sprinkled = sprinkle(&dag, 4).unwrap();
            assert!(sprinkled.is_collision_free(), "{}", spec.label());
            let leaves: Vec<Opinion> = (0..dag.num_leaves())
                .map(|_| {
                    if rng.gen::<f64>() < 0.45 {
                        Opinion::Blue
                    } else {
                        Opinion::Red
                    }
                })
                .collect();
            let base = colour_dag(&dag, &leaves).unwrap();
            let prime = sprinkled.colour(&leaves).unwrap();
            assert!(
                base.root_colour().as_value() <= prime.root_colour().as_value(),
                "coupling violated on {}",
                spec.label()
            );
        }
    }
}

#[test]
fn dag_level_sizes_match_cobra_occupancy_in_expectation() {
    let graph = GraphSpec::RandomRegular { n: 400, d: 20 }
        .generate(&mut StdRng::seed_from_u64(2))
        .unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let steps = 3usize;
    let trials = 250usize;
    let mut dag_mean = 0.0;
    let mut cobra_mean = 0.0;
    for _ in 0..trials {
        let dag = VotingDag::sample(&graph, 5, steps, &mut rng).unwrap();
        dag_mean += dag.num_leaves() as f64;
        let walk = cobra_walk(&graph, 5, 3, steps, false, &mut rng).unwrap();
        cobra_mean += *walk.occupancy.last().unwrap() as f64;
    }
    dag_mean /= trials as f64;
    cobra_mean /= trials as f64;
    assert!(
        (dag_mean - cobra_mean).abs() < 0.15 * dag_mean,
        "dag {dag_mean} vs cobra {cobra_mean}"
    );
}

#[test]
fn dag_estimate_tracks_the_forward_minority_extinction() {
    // After enough rounds on a dense graph the probability a fixed vertex is
    // blue should be essentially zero under both views.
    let graph = GraphSpec::Complete { n: 600 }
        .generate(&mut StdRng::seed_from_u64(4))
        .unwrap();
    let check = DualityCheck {
        vertex: 0,
        rounds: 8,
        p_blue: 0.35,
        trials: 400,
        seed: 21,
    };
    let report = check.run(&graph).unwrap();
    assert!(
        report.forward_estimate < 0.02,
        "forward {}",
        report.forward_estimate
    );
    assert!(report.dag_estimate < 0.02, "dag {}", report.dag_estimate);
}
