//! Equivalence suite for the monomorphized kernel path.
//!
//! The kernels in `crates/dynamics/src/kernel.rs` promise two things
//! (documented there as the determinism contract):
//!
//! 1. **Draw-for-draw `dyn` compatibility** — handed the same RNG, the
//!    kernel path and the generic `dyn Protocol` fallback consume the same
//!    stream and produce bit-identical results.  Pinned here by running
//!    every built-in protocol through the caller-RNG entry points twice —
//!    once normally (kernel path) and once wrapped in `DynOnly` (which
//!    hides the `ProtocolKind` and forces the `dyn` path) — on three graph
//!    families.
//! 2. **Sequential == parallel on the seeded path** — within each dispatch
//!    path, the seeded sequential stepper and the parallel stepper are
//!    bit-identical at any thread count.  The determinism regression suite
//!    covers the kernel path (all built-ins); here we pin the `dyn`
//!    fallback path the same way via `DynOnly`.

use bo3_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MASTER_SEED: u64 = 0xE13;

/// A protocol's display name, its kernel-path build and a `DynOnly` copy.
type ProtocolPair = (
    &'static str,
    Box<dyn Protocol + Sync>,
    Box<dyn Protocol + Sync>,
);

/// The built-in protocols, each alongside a `DynOnly`-wrapped copy.
fn protocol_pairs() -> Vec<ProtocolPair> {
    vec![
        (
            "voter",
            Box::new(Voter::new()),
            Box::new(DynOnly(Voter::new())),
        ),
        (
            "best-of-2 (keep)",
            Box::new(BestOfTwo::keep_own()),
            Box::new(DynOnly(BestOfTwo::keep_own())),
        ),
        (
            "best-of-2 (random)",
            Box::new(BestOfTwo::new(TieRule::Random)),
            Box::new(DynOnly(BestOfTwo::new(TieRule::Random))),
        ),
        (
            "best-of-3",
            Box::new(BestOfThree::new()),
            Box::new(DynOnly(BestOfThree::new())),
        ),
        (
            "best-of-6 (random)",
            Box::new(BestOfK::new(6, TieRule::Random)),
            Box::new(DynOnly(BestOfK::new(6, TieRule::Random))),
        ),
        (
            "best-of-5 (keep)",
            Box::new(BestOfK::new(5, TieRule::KeepOwn)),
            Box::new(DynOnly(BestOfK::new(5, TieRule::KeepOwn))),
        ),
        (
            "local-majority",
            Box::new(LocalMajority::keep_own()),
            Box::new(DynOnly(LocalMajority::keep_own())),
        ),
    ]
}

/// The graph families the contract is pinned on.  The Erdős–Rényi instance
/// spans multiple 4096-vertex chunks so chunked RNG derivation is exercised;
/// the bipartite graph adds structured (oscillation-prone) dynamics.
fn graphs() -> Vec<(&'static str, CsrGraph)> {
    let mut rng = StdRng::seed_from_u64(40);
    vec![
        ("complete", bo3_graph::generators::complete(900)),
        (
            "erdos-renyi",
            bo3_graph::generators::erdos_renyi_gnp(9_000, 0.01, &mut rng).expect("gnp"),
        ),
        (
            "bipartite",
            bo3_graph::generators::complete_bipartite(400, 500).expect("bipartite"),
        ),
    ]
}

fn biased_init(graph: &CsrGraph, seed: u64) -> Configuration {
    let mut rng = StdRng::seed_from_u64(seed);
    InitialCondition::BernoulliWithBias { delta: 0.05 }
        .sample(graph, &mut rng)
        .expect("initial condition")
}

#[test]
fn kernel_and_dyn_paths_are_bit_identical_given_the_same_rng() {
    for (graph_name, graph) in &graphs() {
        let init = biased_init(graph, 3);
        let sim = Simulator::new(graph)
            .expect("simulator")
            .with_stopping(StoppingCondition::fixed_rounds(10))
            .with_trace(true);
        for (name, kernel_side, dyn_side) in &protocol_pairs() {
            // Identically seeded caller RNGs: the two paths must consume
            // them draw-for-draw and end bit-identical.
            let mut rng_kernel = StdRng::seed_from_u64(MASTER_SEED);
            let mut rng_dyn = StdRng::seed_from_u64(MASTER_SEED);
            let via_kernel = sim
                .run(kernel_side.as_ref(), init.clone(), &mut rng_kernel)
                .expect("kernel-path run");
            let via_dyn = sim
                .run(dyn_side.as_ref(), init.clone(), &mut rng_dyn)
                .expect("dyn-path run");
            assert_eq!(
                via_kernel, via_dyn,
                "{name} on {graph_name}: kernel and dyn runs diverged"
            );
        }
    }
}

#[test]
fn unseeded_stepper_also_matches_across_paths() {
    // `Simulator::step_synchronous` (the entry point used by the duality
    // checker and the E3 bench) must consume the caller's RNG identically
    // on both paths, round after round.
    let graph = bo3_graph::generators::complete(700);
    let init = biased_init(&graph, 7);
    let sim = Simulator::new(&graph).expect("simulator");
    for (name, kernel_side, dyn_side) in &protocol_pairs() {
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        let mut next_a = Vec::new();
        let mut next_b = Vec::new();
        for _ in 0..5 {
            sim.step_synchronous(kernel_side.as_ref(), &init, &mut next_a, &mut rng_a);
            sim.step_synchronous(dyn_side.as_ref(), &init, &mut next_b, &mut rng_b);
            assert_eq!(next_a, next_b, "{name}: one-step outputs diverged");
        }
    }
}

#[test]
fn dyn_fallback_path_honours_the_seeded_determinism_contract() {
    // The determinism regression suite pins sequential == parallel for the
    // built-ins (kernel path); this pins the same contract for protocols
    // without a kernel — the `dyn` fallback that custom registry protocols
    // take — including sequential `run_seeded` against the parallel stepper.
    for (graph_name, graph) in &graphs() {
        let init = biased_init(graph, 5);
        for (name, _, dyn_side) in &protocol_pairs() {
            let sequential = Simulator::new(graph)
                .expect("simulator")
                .with_stopping(StoppingCondition::fixed_rounds(8))
                .with_trace(true)
                .run_seeded(dyn_side.as_ref(), init.clone(), MASTER_SEED)
                .expect("sequential dyn run");
            for threads in [1usize, 4] {
                let parallel = ParallelSimulator::new(graph, threads)
                    .expect("parallel simulator")
                    .with_stopping(StoppingCondition::fixed_rounds(8))
                    .with_trace(true)
                    .run(dyn_side.as_ref(), init.clone(), MASTER_SEED)
                    .expect("parallel dyn run");
                assert_eq!(
                    sequential, parallel,
                    "{name} on {graph_name}: dyn path diverged at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn csr_topology_is_bit_identical_to_the_csr_kernel_path() {
    // The topology-generic engine over `CsrTopology` must reproduce the
    // seeded CSR kernel path bit for bit: same per-(seed, round, chunk) RNG
    // streams, same Lemire-reduced draws, same results — on every graph
    // family and every built-in protocol.  This pins the Topology layer as
    // a pure refactoring of the materialised path.
    for (graph_name, graph) in &graphs() {
        let init = biased_init(graph, 17);
        let via_graph_engine = |protocol: &dyn Protocol| {
            Simulator::new(graph)
                .expect("simulator")
                .with_stopping(StoppingCondition::fixed_rounds(8))
                .with_trace(true)
                .run_seeded(protocol, init.clone(), MASTER_SEED)
                .expect("seeded run")
        };
        let via_topology_engine = |kind: ProtocolKind, threads: usize| {
            TopologySimulator::new(bo3_graph::CsrTopology::new(graph))
                .expect("topology simulator")
                .with_threads(threads)
                .with_stopping(StoppingCondition::fixed_rounds(8))
                .with_trace(true)
                .run(kind, init.clone(), MASTER_SEED)
                .expect("topology run")
        };
        for (name, kernel_side, _) in &protocol_pairs() {
            let kind = kernel_side.kind().expect("built-in protocol");
            let reference = via_graph_engine(kernel_side.as_ref());
            for threads in [1usize, 4] {
                assert_eq!(
                    reference,
                    via_topology_engine(kind, threads),
                    "{name} on {graph_name}: CsrTopology diverged at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn implicit_complete_matches_the_materialised_complete_graph() {
    // The `Complete` topology and a materialised K_n must be the *same
    // seeded experiment*: the kernels synthesise identical rows from both,
    // so whole runs agree bit for bit — adjacency allocation is the only
    // difference.  (`n` spans multiple chunks to exercise the chunked RNG.)
    let n = 9_500;
    let graph = bo3_graph::generators::complete(n);
    let init = biased_init(&graph, 19);
    for (name, kernel_side, _) in &protocol_pairs() {
        let kind = kernel_side.kind().expect("built-in protocol");
        let materialised = Simulator::new(&graph)
            .expect("simulator")
            .with_stopping(StoppingCondition::fixed_rounds(6))
            .with_trace(true)
            .run_seeded(kernel_side.as_ref(), init.clone(), MASTER_SEED)
            .expect("materialised run");
        let implicit = TopologySimulator::new(bo3_graph::Complete::new(n).expect("topology"))
            .expect("topology simulator")
            .with_stopping(StoppingCondition::fixed_rounds(6))
            .with_trace(true)
            .run(kind, init.clone(), MASTER_SEED)
            .expect("implicit run");
        assert_eq!(
            materialised, implicit,
            "{name}: implicit K_n diverged from materialised K_n"
        );
    }
}

#[test]
fn implicit_gnp_agrees_with_its_own_materialisation() {
    // An implicit G(n, p) names a frozen edge set; materialising that same
    // edge set and running the (differently-sampled) CSR path must agree on
    // the dynamics' *distributional* behaviour, and the local-majority
    // protocol — which enumerates neighbourhoods instead of sampling — must
    // agree bit for bit, since both paths see identical rows.
    let topo = bo3_graph::ImplicitGnp::new(2_500, 0.3, 23).expect("implicit gnp");
    let graph = topo.materialize().expect("materialise");
    let init = biased_init(&graph, 29);
    let kind = ProtocolKind::LocalMajority(TieRule::KeepOwn);
    let materialised = Simulator::new(&graph)
        .expect("simulator")
        .with_stopping(StoppingCondition::fixed_rounds(4))
        .with_trace(true)
        .run_seeded(&LocalMajority::keep_own(), init.clone(), MASTER_SEED)
        .expect("materialised run");
    let implicit = TopologySimulator::new(topo)
        .expect("topology simulator")
        .with_stopping(StoppingCondition::fixed_rounds(4))
        .with_trace(true)
        .run(kind, init, MASTER_SEED)
        .expect("implicit run");
    assert_eq!(
        materialised, implicit,
        "local majority must agree bit-for-bit between implicit and materialised G(n,p)"
    );
}

#[test]
fn full_convergence_agrees_between_paths() {
    // Beyond fixed-round trajectories: let Best-of-3 run to consensus on a
    // multi-chunk graph and require identical stop reason, winner, round
    // count and trace across dispatch paths (shared caller RNG) and across
    // engines (seeded kernel path, sequential vs 8 threads).
    let mut rng = StdRng::seed_from_u64(41);
    let graph = bo3_graph::generators::erdos_renyi_gnp(9_000, 0.02, &mut rng).expect("gnp");
    let init = biased_init(&graph, 11);
    let sim = Simulator::new(&graph).expect("simulator").with_trace(true);

    let mut rng_kernel = StdRng::seed_from_u64(MASTER_SEED);
    let via_kernel = sim
        .run(&BestOfThree::new(), init.clone(), &mut rng_kernel)
        .expect("kernel-path run");
    assert!(via_kernel.reached_consensus(), "scenario must converge");
    let mut rng_dyn = StdRng::seed_from_u64(MASTER_SEED);
    let via_dyn = sim
        .run(&DynOnly(BestOfThree::new()), init.clone(), &mut rng_dyn)
        .expect("dyn-path run");
    assert_eq!(via_kernel, via_dyn, "kernel vs dyn convergence diverged");

    let seq = sim
        .run_seeded(&BestOfThree::new(), init.clone(), MASTER_SEED)
        .expect("sequential kernel run");
    assert!(seq.reached_consensus(), "seeded scenario must converge");
    let par = ParallelSimulator::new(&graph, 8)
        .expect("parallel simulator")
        .with_trace(true)
        .run(&BestOfThree::new(), init, MASTER_SEED)
        .expect("parallel kernel run");
    assert_eq!(seq, par, "sequential vs parallel kernel diverged");
}
