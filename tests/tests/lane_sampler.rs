//! Batched-lane vs strict-scalar sampling equivalence.
//!
//! The draw-ahead lane (`bo3_graph::lane`) re-routes every seeded engine
//! path on the hash-defined topologies, promising **bit-identical**
//! dynamics to the scalar rejection sampler it replaced: same accepted
//! neighbours, same per-draw try counts, same RNG stream order.  This
//! suite pins that promise end to end through the public engine API by
//! running every configuration twice — once normally (lane path) and once
//! with the topology wrapped in [`ScalarSampled`], which hides the
//! pair-hash spec and forces the pre-lane scalar sampler — and requiring
//! identical [`RunResult`]s (stop reason, winner, rounds, full trace):
//!
//! * across edge densities `p ∈ {0.05, 0.3, 0.5, 0.9}` (the rejection
//!   rate, and with it the lane's accept-mask shape, varies by ~20x);
//! * on both hash-defined families (`G(n, p)` and the planted-partition
//!   SBM, whose two-threshold accept test exercises the block logic);
//! * under both schedules (chunk-scoped sync streams, round-scoped async
//!   streams) and at 1, 2 and 8 threads on a multi-chunk instance;
//! * for every lane-eligible protocol (fixed draw counts, no tie coin)
//!   and randomised `(p, seed, n)` triples under proptest;
//! * with identical sampler meter totals (tries and accepts) on the
//!   metered observer path, so batching never changes what metering sees.

#![recursion_limit = "256"]

use bo3_core::prelude::*;
use bo3_graph::ScalarSampled;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MASTER_SEED: u64 = 0x1A9E;

fn biased_init(n: usize, seed: u64) -> Configuration {
    let mut rng = StdRng::seed_from_u64(seed);
    InitialCondition::BernoulliWithBias { delta: 0.1 }
        .sample_n(n, &mut rng)
        .expect("initial condition")
}

/// Runs `kind` seeded on `topo` under `schedule` at `threads`, tracing
/// every round so the assertion compares whole trajectories.
fn run_engine<T: Topology>(
    topo: T,
    kind: ProtocolKind,
    schedule: Schedule,
    threads: usize,
    rounds: usize,
    init: Configuration,
) -> RunResult {
    Engine::new(topo)
        .expect("engine")
        .with_schedule(schedule)
        .with_stopping(StoppingCondition::fixed_rounds(rounds))
        .with_threads(threads)
        .with_trace(true)
        .run_seeded_kind(kind, init, MASTER_SEED)
        .expect("seeded run")
}

/// Asserts lane == scalar on one topology across both schedules.
fn assert_lane_matches_scalar<T: Topology + Clone>(
    topo: T,
    kind: ProtocolKind,
    threads: usize,
    rounds: usize,
    label: &str,
) {
    let init = biased_init(topo.n(), 7);
    for schedule in [Schedule::Synchronous, Schedule::AsynchronousRandomOrder] {
        let lane = run_engine(topo.clone(), kind, schedule, threads, rounds, init.clone());
        let scalar = run_engine(
            ScalarSampled(topo.clone()),
            kind,
            schedule,
            threads,
            rounds,
            init.clone(),
        );
        assert_eq!(
            lane,
            scalar,
            "{label}: lane diverged from scalar sampling under {} at {threads} threads",
            schedule.label()
        );
    }
}

#[test]
fn lane_matches_scalar_on_gnp_across_densities() {
    for &p in &[0.05, 0.3, 0.5, 0.9] {
        let topo = ImplicitGnp::new(600, p, 0xA1).expect("gnp");
        assert_lane_matches_scalar(topo, ProtocolKind::BestOfThree, 1, 6, &format!("gnp p={p}"));
    }
}

#[test]
fn lane_matches_scalar_on_sbm_across_densities() {
    for &(p_in, p_out) in &[(0.7, 0.05), (0.3, 0.3), (0.9, 0.5), (0.05, 0.9)] {
        let topo = ImplicitSbm::new(600, 3, p_in, p_out, 0xB2).expect("sbm");
        assert_lane_matches_scalar(
            topo,
            ProtocolKind::BestOfThree,
            1,
            6,
            &format!("sbm p_in={p_in} p_out={p_out}"),
        );
    }
}

#[test]
fn lane_matches_scalar_across_thread_counts_on_a_multi_chunk_instance() {
    // n = 9_000 spans multiple 4096-vertex chunks, so the sync schedule
    // exercises per-(seed, round, chunk) lane scoping and the thread sweep
    // exercises chunk-boundary tail discards at every split.
    let topo = ImplicitGnp::new(9_000, 0.5, 0xC3).expect("gnp");
    for threads in [1usize, 2, 8] {
        assert_lane_matches_scalar(
            topo,
            ProtocolKind::BestOfThree,
            threads,
            3,
            "multi-chunk gnp",
        );
    }
}

#[test]
fn lane_matches_scalar_for_every_lane_eligible_protocol() {
    let topo = ImplicitGnp::new(500, 0.4, 0xD4).expect("gnp");
    for kind in [
        ProtocolKind::Voter,
        ProtocolKind::BestOfTwo(TieRule::KeepOwn),
        ProtocolKind::BestOfThree,
        ProtocolKind::BestOfK {
            k: 5,
            tie_rule: TieRule::Random,
        },
        ProtocolKind::BestOfK {
            k: 4,
            tie_rule: TieRule::KeepOwn,
        },
        // Coin protocols are NOT lane-eligible; they must stay equivalent
        // trivially (both sides take the scalar path).
        ProtocolKind::BestOfTwo(TieRule::Random),
    ] {
        assert_lane_matches_scalar(topo, kind, 1, 5, &format!("{kind:?}"));
    }
}

#[test]
fn metered_try_and_accept_totals_are_identical_under_batching() {
    // The lane meters once per chunk (`record_lane`) where the scalar path
    // meters per draw through `MeteredTopology` — different plumbing, but
    // the totals the observer reports must be the same numbers.
    struct MeterTotals {
        tries: u64,
        accepts: u64,
        lane_occupancy: Option<f64>,
    }
    fn run_metered<T: Topology>(topo: T, init: Configuration) -> MeterTotals {
        let engine = Engine::new(topo)
            .expect("engine")
            .with_observer(MetricsObserver::new())
            .with_schedule(Schedule::Synchronous)
            .with_stopping(StoppingCondition::fixed_rounds(4));
        engine
            .run_seeded_kind(ProtocolKind::BestOfThree, init, MASTER_SEED)
            .expect("metered run");
        let meter = engine.observer().meter();
        MeterTotals {
            tries: meter.tries(),
            accepts: meter.accepts(),
            lane_occupancy: meter.lane_occupancy(),
        }
    }
    let topo = ImplicitGnp::new(700, 0.5, 0xE5).expect("gnp");
    let init = biased_init(700, 7);
    let lane = run_metered(topo, init.clone());
    let scalar = run_metered(ScalarSampled(topo), init);
    assert_eq!(lane.tries, scalar.tries, "try totals diverged");
    assert_eq!(lane.accepts, scalar.accepts, "accept totals diverged");
    assert!(lane.tries > lane.accepts, "p = 1/2 must reject sometimes");
    assert!(
        lane.lane_occupancy.is_some(),
        "the unwrapped engine must have taken the lane"
    );
    assert!(
        scalar.lane_occupancy.is_none(),
        "the ScalarSampled engine must never take the lane"
    );
}

/// Randomised densities, graph seeds and sizes: the lane must agree with
/// the scalar sampler on both schedules for any dense-regime instance,
/// not just the hand-picked grid.  (Plain function so the `proptest!`
/// macro body stays tiny — its recursive expansion chokes on large
/// bodies.)
fn check_random_instance(p: f64, graph_seed: u64, n: usize) {
    let topo = ImplicitGnp::new(n, p, graph_seed).expect("gnp");
    let init = biased_init(n, graph_seed ^ 0x5A);
    for schedule in [Schedule::Synchronous, Schedule::AsynchronousRandomOrder] {
        let lane = run_engine(
            topo,
            ProtocolKind::BestOfThree,
            schedule,
            1,
            4,
            init.clone(),
        );
        let scalar = run_engine(
            ScalarSampled(topo),
            ProtocolKind::BestOfThree,
            schedule,
            1,
            4,
            init.clone(),
        );
        assert_eq!(lane, scalar, "p={p} seed={graph_seed} n={n}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lane_matches_scalar_on_random_instances(
        p in 0.05f64..0.95,
        graph_seed in 0u64..1_000,
        n in 64usize..400,
    ) {
        check_random_instance(p, graph_seed, n);
    }
}
