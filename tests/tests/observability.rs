//! Observer-neutrality regression suite.
//!
//! PR 8's hard constraint, pinned end to end: observability *reads* the
//! simulation and never perturbs it.  An engine with a recording
//! [`MetricsObserver`] installed must produce `RunResult`s bit-identical
//! to the default (Noop) engine — at 1, 2 and 8 threads, on both
//! schedules, with and without a composed adversary stack, on implicit
//! and materialised topologies — while its registry fills with an honest
//! account of the run (rounds, updates, rejection-sampler tries,
//! adversary tallies).  A campaign run must additionally land parseable
//! `metrics.json` / `metrics.prom` / `events.jsonl` artefacts without
//! disturbing the deterministic cell results.

use bo3_core::configio::Json;
use bo3_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0x0B5E;

/// Spans multiple 4096-vertex kernel chunks so chunk-boundary effects of
/// the metering wrapper cannot hide inside one work unit.
const N: usize = 9_000;

const ROUNDS: usize = 5;

fn prefix_blue(n: usize, blue: usize) -> Configuration {
    let mut config = Configuration::all_red(n);
    for v in 0..blue {
        config.set(v, Opinion::Blue);
    }
    config
}

/// Every adversary mechanism at once — the observed path has to forward
/// all the routing predicates (zealot skips, partition checks, drop
/// streams) untouched for this to stay bit-identical.
fn adversary_stack(n: usize) -> Adversary {
    Adversary::build(
        &[
            AdversarySpec::Zealots { fraction: 0.03 },
            AdversarySpec::Byzantine { fraction: 0.03 },
            AdversarySpec::Drop { q: 0.1 },
            AdversarySpec::Partition {
                from_round: 1,
                until_round: 3,
                blocks: 2,
            },
        ],
        n,
        SEED ^ 0xAD,
    )
    .expect("adversary stack")
}

/// Runs the Noop baseline at one thread, then the observed engine at
/// 1/2/8 threads across both schedules ± the adversary stack, demanding
/// bit-identical results and sane recorded counters throughout.
fn assert_observer_neutral<T: Topology>(make_topo: &dyn Fn() -> T, metered: bool, label: &str) {
    let n = make_topo().n();
    for schedule in [Schedule::Synchronous, Schedule::AsynchronousRandomOrder] {
        for adversarial in [false, true] {
            let configure = |threads: usize| {
                let engine = Engine::new(make_topo())
                    .unwrap()
                    .with_schedule(schedule)
                    .with_stopping(StoppingCondition::fixed_rounds(ROUNDS))
                    .with_threads(threads);
                if adversarial {
                    engine.with_adversary(adversary_stack(n))
                } else {
                    engine
                }
            };
            let baseline = configure(1)
                .run_seeded_kind(ProtocolKind::BestOfThree, prefix_blue(n, n / 2 - 300), 42)
                .expect("baseline run");
            assert_eq!(baseline.adversary.is_some(), adversarial);

            for threads in [1usize, 2, 8] {
                let ctx = format!("{label}/{}/adv={adversarial}/t{threads}", schedule.label());
                let observed = configure(threads).with_observer(MetricsObserver::new());
                let result = observed
                    .run_seeded_kind(ProtocolKind::BestOfThree, prefix_blue(n, n / 2 - 300), 42)
                    .expect("observed run");
                assert_eq!(result, baseline, "{ctx}: observer perturbed the run");

                let obs = observed.observer();
                assert_eq!(obs.rounds(), result.rounds as u64, "{ctx}: rounds");
                assert_eq!(
                    obs.updates(),
                    result.rounds as u64 * n as u64,
                    "{ctx}: updates"
                );
                let meter = obs.meter();
                // The synchronous CSR kernel path draws row-uniformly and
                // never rejects, so it runs unmetered by design; every
                // other path (all implicit topologies, and the async sweep
                // even on CSR) goes through the metered sampler.
                let expect_metered =
                    metered || matches!(schedule, Schedule::AsynchronousRandomOrder);
                if expect_metered {
                    assert!(meter.accepts() > 0, "{ctx}: sampler unmetered");
                    assert!(meter.tries() >= meter.accepts(), "{ctx}: tries < accepts");
                } else {
                    assert_eq!(meter.accepts(), 0, "{ctx}: CSR path metered");
                }
                let snapshot = obs.registry().snapshot_json();
                let parsed = Json::parse(&snapshot).expect("snapshot parses");
                for key in ["counters", "gauges", "histograms"] {
                    assert!(parsed.get(key).is_some(), "{ctx}: missing {key}");
                }
                if adversarial {
                    // The adversary tally lands in the registry too, and it
                    // agrees with the counters the run itself reported.
                    let counters = result.adversary.as_ref().expect("adversary counters");
                    assert!(
                        snapshot.contains(&format!("\"adversary_zealots\":{}", counters.zealots)),
                        "{ctx}: zealot gauge missing from {snapshot}"
                    );
                    assert!(
                        snapshot.contains(&format!(
                            "\"adversary_dropped_samples_total\":{}",
                            counters.dropped_samples
                        )),
                        "{ctx}: drop counter missing from {snapshot}"
                    );
                }
            }
        }
    }
}

#[test]
fn observer_is_neutral_on_the_complete_graph() {
    assert_observer_neutral(&|| Complete::new(N).unwrap(), true, "complete");
}

#[test]
fn observer_is_neutral_on_rejection_sampled_gnp() {
    assert_observer_neutral(
        &|| ImplicitGnp::new(N, 0.3, SEED).unwrap(),
        true,
        "implicit_gnp",
    );
}

#[test]
fn observer_is_neutral_on_materialised_graphs() {
    let graph = GraphSpec::ErdosRenyiGnp { n: N, p: 0.3 }
        .generate(&mut StdRng::seed_from_u64(SEED))
        .expect("graph");
    let graph = &graph;
    assert_observer_neutral(&|| CsrTopology::new(graph), false, "csr");
}

#[test]
fn gnp_try_rate_exceeds_one_and_complete_is_exactly_one() {
    let run = |topo: BuiltTopology| {
        let n = topo.n();
        let engine = Engine::new(topo)
            .unwrap()
            .with_stopping(StoppingCondition::fixed_rounds(3))
            .with_observer(MetricsObserver::new());
        engine
            .run_seeded_kind(ProtocolKind::BestOfThree, prefix_blue(n, n / 2), 7)
            .unwrap();
        engine.observer().tries_per_draw().expect("metered path")
    };
    let complete = run(TopologySpec::Complete { n: 2_000 }.build(SEED).unwrap());
    assert_eq!(complete, 1.0, "closed-form sampler never rejects");
    let gnp = run(TopologySpec::ImplicitGnp { n: 2_000, p: 0.3 }
        .build(SEED)
        .unwrap());
    // p = 0.3 accepts roughly one candidate in three.
    assert!(gnp > 2.0 && gnp < 6.0, "gnp try rate {gnp}");
}

#[test]
fn campaign_emits_parseable_observability_artefacts_and_identical_results() {
    let cell = |ratio: f64| {
        Experiment::on(TopologySpec::ImplicitSbm {
            n: 2_000,
            blocks: 2,
            p_in: ratio / (1.0 + ratio),
            p_out: 1.0 / (1.0 + ratio),
        })
        .named(format!("obs/r{ratio}"))
        .initial(InitialCondition::PrefixBlue { blue: 600 })
        .stopping(StoppingCondition::consensus_within(16))
        .replicas(2)
        .threads(2)
    };
    let campaign = || {
        Campaign::new("obs/artefacts", SEED)
            .add_cell(cell(2.0))
            .add_cell(cell(8.0))
    };

    let dir_a = std::env::temp_dir().join(format!("bo3_obs_art_a_{}", std::process::id()));
    let dir_b = std::env::temp_dir().join(format!("bo3_obs_art_b_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);

    let runner = CampaignRunner::new(campaign(), &dir_a).rounds_per_slice(4);
    assert_eq!(runner.run().unwrap(), CampaignOutcome::Completed);

    // metrics.json: the uniform registry snapshot schema.
    let metrics = std::fs::read_to_string(runner.metrics_json_path()).unwrap();
    let parsed = Json::parse(&metrics).expect("metrics.json parses");
    for key in ["counters", "gauges", "histograms"] {
        assert!(parsed.get(key).is_some(), "metrics.json missing {key}");
    }
    assert!(metrics.contains("\"campaign_cells_done_total\":2"));

    // metrics.prom: Prometheus text exposition.
    let prom = std::fs::read_to_string(runner.metrics_prom_path()).unwrap();
    assert!(prom.contains("# TYPE campaign_cells_done_total counter"));
    assert!(prom.contains("campaign_cells_done_total 2"));

    // events.jsonl: one parseable object per line, lifecycle included.
    let events = std::fs::read_to_string(runner.events_path()).unwrap();
    for line in events.lines() {
        Json::parse(line).expect("event line parses");
    }
    assert!(events.contains("\"event\":\"cell_done\""));
    assert!(events.contains("\"event\":\"campaign_completed\""));

    // The deterministic artefact set is untouched by observability: a
    // second, independent run produces byte-identical cell results.
    let again = CampaignRunner::new(campaign(), &dir_b).rounds_per_slice(4);
    assert_eq!(again.run().unwrap(), CampaignOutcome::Completed);
    for index in 0..2 {
        assert_eq!(
            std::fs::read(runner.cell_path(index)).unwrap(),
            std::fs::read(again.cell_path(index)).unwrap(),
            "cell {index} diverged"
        );
    }

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
