//! Property-based tests (proptest) on the invariants the whole stack relies
//! on: CSR validity of every generator, configuration bookkeeping,
//! packed-snapshot/configuration agreement, majority monotonicity, the
//! sprinkling coupling, and recursion monotonicity.

use bo3_core::prelude::*;
use bo3_dag::colouring::colour_dag;
use bo3_dag::sprinkling::sprinkle;
use bo3_dag::voting_dag::VotingDag;
use bo3_theory::binomial::{best_of_k_blue_odd, best_of_three_blue};
use bo3_theory::recursion::{ideal_step, sprinkling_step};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A strategy over small random graph specifications that always produce a
/// connected graph with no isolated vertices.
fn graph_spec_strategy() -> impl Strategy<Value = GraphSpec> {
    prop_oneof![
        (3usize..40).prop_map(|n| GraphSpec::Complete { n }),
        (3usize..60).prop_map(|n| GraphSpec::Cycle { n }),
        (4usize..40).prop_map(|n| GraphSpec::Wheel { n }),
        (2usize..12, 2usize..12).prop_map(|(a, b)| GraphSpec::CompleteBipartite { a, b }),
        (1usize..7).prop_map(|dim| GraphSpec::Hypercube { dim }),
        (3usize..8, 3usize..8).prop_map(|(r, c)| GraphSpec::Torus2d { rows: r, cols: c }),
        (3usize..10, 0usize..4).prop_map(|(clique, bridge)| GraphSpec::Barbell { clique, bridge }),
        (2usize..20, 1usize..30, 1usize..3).prop_map(|(core, periphery, attach)| {
            GraphSpec::CorePeriphery {
                core,
                periphery,
                attach: attach.min(core),
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_graphs_satisfy_csr_invariants(spec in graph_spec_strategy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = spec.generate(&mut rng).unwrap();
        // Round-tripping through the validating constructor re-checks
        // sortedness, symmetry, self-loop freedom and offset consistency.
        let (n, offsets, neighbours) = g.clone().into_csr();
        let rebuilt = CsrGraph::from_csr(n, offsets, neighbours).unwrap();
        prop_assert_eq!(rebuilt, g);
    }

    #[test]
    fn configuration_counts_stay_consistent(ops in proptest::collection::vec((0usize..50, any::<bool>()), 1..200)) {
        let mut cfg = Configuration::all_red(50);
        for (v, blue) in ops {
            cfg.set(v, if blue { Opinion::Blue } else { Opinion::Red });
            let recount = cfg.as_slice().iter().filter(|o| o.is_blue()).count();
            prop_assert_eq!(recount, cfg.blue_count());
            prop_assert_eq!(cfg.blue_count() + cfg.red_count(), 50);
        }
    }

    #[test]
    fn majority_maps_are_monotone_and_bounded(p in 0.0f64..1.0, q in 0.0f64..1.0) {
        let (lo, hi) = if p <= q { (p, q) } else { (q, p) };
        // Monotonicity in the input probability.
        prop_assert!(best_of_three_blue(lo) <= best_of_three_blue(hi) + 1e-12);
        prop_assert!(best_of_k_blue_odd(5, lo) <= best_of_k_blue_odd(5, hi) + 1e-12);
        // Range stays inside [0, 1].
        for x in [lo, hi] {
            let y = best_of_three_blue(x);
            prop_assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn sprinkling_recursion_dominates_ideal_recursion(p in 0.0f64..0.5, eps in 0.0f64..0.2) {
        prop_assert!(sprinkling_step(p, eps) + 1e-12 >= ideal_step(p));
        // And it is monotone in eps.
        prop_assert!(sprinkling_step(p, eps) <= sprinkling_step(p, eps + 0.05) + 1e-12);
    }

    #[test]
    fn initial_condition_exact_count_is_exact(n in 1usize..200, blue_frac in 0.0f64..1.0, seed in any::<u64>()) {
        let n = n.max(2);
        let blue = ((n as f64) * blue_frac) as usize;
        let g = bo3_graph::generators::complete(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = InitialCondition::ExactCount { blue }.sample(&g, &mut rng).unwrap();
        prop_assert_eq!(cfg.blue_count(), blue);
        prop_assert_eq!(cfg.len(), n);
    }

    #[test]
    fn sprinkled_dags_are_collision_free_and_dominate(
        n in 3usize..12,
        height in 1usize..5,
        seed in any::<u64>(),
        p_blue in 0.0f64..1.0,
    ) {
        let g = bo3_graph::generators::complete(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = VotingDag::sample(&g, 0, height, &mut rng).unwrap();
        let sprinkled = sprinkle(&dag, height).unwrap();
        prop_assert!(sprinkled.is_collision_free());
        let leaves: Vec<Opinion> = (0..dag.num_leaves())
            .map(|i| {
                // Deterministic pseudo-random colouring derived from the seed.
                let x = (seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64 * 1442695040888963407)) as f64
                    / u64::MAX as f64;
                if x < p_blue { Opinion::Blue } else { Opinion::Red }
            })
            .collect();
        let base = colour_dag(&dag, &leaves).unwrap();
        let prime = sprinkled.colour(&leaves).unwrap();
        for t in 0..=dag.height() {
            for i in 0..dag.level(t).len() {
                prop_assert!(base.colours[t][i].as_value() <= prime.colours[t][i].as_value());
            }
        }
    }

    #[test]
    fn packed_snapshot_matches_unpacked_configuration(blues in proptest::collection::vec(any::<bool>(), 0..300)) {
        let opinions: Vec<Opinion> = blues
            .iter()
            .map(|&b| if b { Opinion::Blue } else { Opinion::Red })
            .collect();
        let cfg = Configuration::new(opinions.clone());
        let snap = PackedSnapshot::from_opinions(&opinions);
        prop_assert_eq!(snap.len(), cfg.len());
        prop_assert_eq!(snap.blue_count(), cfg.blue_count());
        prop_assert!((snap.blue_fraction() - cfg.blue_fraction()).abs() < 1e-12);
        for v in 0..cfg.len() {
            prop_assert_eq!(snap.get(v), cfg.get(v));
            prop_assert_eq!(snap.is_blue(v), cfg.get(v).is_blue());
        }
    }

    #[test]
    fn packed_snapshot_tracks_configuration_under_mutation(
        n in 1usize..200,
        ops in proptest::collection::vec((any::<u64>(), any::<bool>()), 1..150),
    ) {
        let mut cfg = Configuration::all_red(n);
        let mut snap = PackedSnapshot::all_red(n);
        prop_assert_eq!(snap.blue_count(), 0);
        for (raw_v, blue) in ops {
            let v = (raw_v % n as u64) as usize;
            let opinion = if blue { Opinion::Blue } else { Opinion::Red };
            cfg.set(v, opinion);
            snap.set(v, opinion);
            prop_assert_eq!(snap.blue_count(), cfg.blue_count());
            prop_assert_eq!(snap.get(v), cfg.get(v));
        }
        // Repacking from the mutated configuration reproduces the same bits.
        let mut repacked = PackedSnapshot::all_red(0);
        repacked.repack_from(cfg.as_slice());
        prop_assert_eq!(repacked, snap);
    }

    #[test]
    fn implicit_gnp_matches_the_materialized_generator_distributionally(
        n in 60usize..160,
        p_milli in 150u32..850,
        seed in any::<u64>(),
    ) {
        use bo3_graph::{ImplicitGnp, Topology};
        let p = p_milli as f64 / 1000.0;
        let topo = ImplicitGnp::new(n, p, seed).unwrap();
        let g = topo.materialize().unwrap();

        // The frozen edge set satisfies every CSR invariant.
        let (nn, offsets, neighbours) = g.clone().into_csr();
        prop_assert_eq!(CsrGraph::from_csr(nn, offsets, neighbours).unwrap(), g.clone());

        // Exact agreement between the implicit views and the materialisation.
        for v in 0..n {
            prop_assert_eq!(topo.degree(v), g.degree(v));
        }

        // Distributional agreement with the materialised erdos_renyi_gnp
        // generator: both draw Binomial(C(n,2), p) edge counts, so the two
        // realisations must sit within a few standard deviations of the
        // shared mean (5.5 sigma each side keeps the flake rate negligible
        // across the proptest case budget).
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
        let reference = bo3_graph::generators::erdos_renyi_gnp(n, p, &mut rng).unwrap();
        let pairs = (n * (n - 1) / 2) as f64;
        let mean = p * pairs;
        let sd = (pairs * p * (1.0 - p)).sqrt();
        for (label, edges) in [("implicit", g.num_edges()), ("materialized", reference.num_edges())] {
            prop_assert!(
                (edges as f64 - mean).abs() <= 5.5 * sd + 1.0,
                "{} G({}, {}) has {} edges, expected {} +- {}",
                label, n, p, edges, mean, sd
            );
        }

        // Neighbour sampling lands on actual neighbours of the frozen set.
        let mut draw_rng = StdRng::seed_from_u64(seed ^ 0x5A17);
        for v in 0..n.min(16) {
            if g.degree(v) > 0 {
                let w = topo.sample_neighbour(v, &mut draw_rng);
                prop_assert!(g.has_edge(v, w), "sampled non-neighbour {} of {}", w, v);
            }
        }
    }

    #[test]
    fn run_results_are_internally_consistent(n in 50usize..300, delta_milli in 10u32..300, seed in any::<u64>()) {
        let delta = delta_milli as f64 / 1000.0;
        let g = bo3_graph::generators::complete(n);
        let sim = Simulator::new(&g).unwrap().with_trace(true);
        let mut rng = StdRng::seed_from_u64(seed);
        let init = InitialCondition::BernoulliWithBias { delta: delta.min(0.49) }
            .sample(&g, &mut rng)
            .unwrap();
        let run = sim.run(&BestOfThree::new(), init, &mut rng).unwrap();
        let trace = run.trace.as_ref().unwrap();
        prop_assert_eq!(trace.len(), run.rounds + 1);
        // The final trace record agrees with the reported final blue fraction.
        let last = trace.last().unwrap();
        prop_assert!((last.blue_fraction - run.final_blue_fraction).abs() < 1e-12);
        // Consensus implies an all-one-colour final fraction.
        if let Some(winner) = run.winner {
            match winner {
                Opinion::Red => prop_assert_eq!(run.final_blue_fraction, 0.0),
                Opinion::Blue => prop_assert_eq!(run.final_blue_fraction, 1.0),
            }
        }
    }
}
