//! End-to-end coverage of the Scenario API (`TopologySpec` + builder-style
//! `Experiment`): every spec variant runs through `Experiment::run`, and
//! materialised specs stay bit-identical to the pre-redesign execution path
//! at several thread counts.

use bo3_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn paper_experiment(spec: TopologySpec) -> Experiment {
    Experiment::on(spec)
        .initial(InitialCondition::BernoulliWithBias { delta: 0.15 })
        .stopping(StoppingCondition::consensus_within(10_000))
        .replicas(4)
        .seed(0x5CE)
}

/// Shared per-variant assertions: the run completes, every replica is
/// reported, and the result names the right topology size.
fn check_runs(spec: TopologySpec) -> ExperimentResult {
    let n = spec.num_vertices();
    let label = spec.label();
    let result = paper_experiment(spec).run().unwrap();
    assert_eq!(result.n, n, "{label}");
    assert_eq!(result.report.outcomes.len(), 4, "{label}");
    assert!(
        (result.report.consensus_rate - 1.0).abs() < 1e-12,
        "{label} should reach consensus"
    );
    result
}

#[test]
fn complete_variant_runs_end_to_end() {
    let result = check_runs(TopologySpec::Complete { n: 1_200 });
    assert!(result.red_swept());
    // Closed-form exact degree stats, no adjacency.
    assert_eq!(result.degree_stats.computed().unwrap().min, 1_199);
    assert!(result.topology_memory_bytes < 1_024);
    assert!(result.prediction.is_computed());
}

#[test]
fn complete_bipartite_variant_runs_end_to_end() {
    let result = check_runs(TopologySpec::CompleteBipartite { a: 500, b: 700 });
    let stats = result.degree_stats.computed().unwrap();
    assert_eq!(stats.min, 500);
    assert_eq!(stats.max, 700);
}

#[test]
fn complete_multipartite_variant_runs_end_to_end() {
    let result = check_runs(TopologySpec::CompleteMultipartite {
        blocks: vec![300, 400, 500],
    });
    let stats = result.degree_stats.computed().unwrap();
    assert_eq!(stats.min, 700);
    assert_eq!(stats.max, 900);
}

#[test]
fn implicit_gnp_variant_runs_end_to_end() {
    let result = check_runs(TopologySpec::ImplicitGnp { n: 1_500, p: 0.4 });
    assert!(result.red_swept());
    // Hash-defined: the dense analyses degrade to typed skips, not errors.
    assert!(result.degree_stats.skipped_reason().is_some());
    assert!(result.prediction.skipped_reason().is_some());
}

#[test]
fn implicit_sbm_variant_runs_end_to_end() {
    let result = check_runs(TopologySpec::ImplicitSbm {
        n: 1_200,
        blocks: 2,
        p_in: 0.5,
        p_out: 0.4,
    });
    assert!(result.degree_stats.skipped_reason().is_some());
}

#[test]
fn materialised_variant_runs_end_to_end() {
    let result = check_runs(TopologySpec::Materialised(GraphSpec::DenseForAlpha {
        n: 1_000,
        alpha: 0.75,
    }));
    assert!(result.red_swept());
    assert!(result.degree_stats.is_computed());
    assert!(result.prediction.is_computed());
}

/// The migration pin: for a materialised spec, `Experiment::run` must
/// produce the same seeded `MonteCarloReport` as the pre-redesign pipeline
/// (generate the graph from `StdRng(seed ^ GRAPH_SEED_SALT)`, then run
/// `MonteCarlo` on it) — bit-for-bit, at 1, 2 and 8 worker threads.
#[test]
fn materialised_reports_are_bit_identical_to_the_pre_redesign_path() {
    let graph_spec = GraphSpec::DenseForAlpha { n: 900, alpha: 0.8 };
    let seed = 0xBEE5;
    let delta = 0.1;
    let replicas = 6;

    // The pre-redesign path, reproduced verbatim.
    let graph = graph_spec
        .generate(&mut StdRng::seed_from_u64(
            seed ^ bo3_graph::GRAPH_SEED_SALT,
        ))
        .unwrap();

    for threads in [1usize, 2, 8] {
        let legacy_report = MonteCarlo {
            protocol: ProtocolSpec::BestOfThree,
            initial: InitialCondition::BernoulliWithBias { delta },
            schedule: Schedule::Synchronous,
            stopping: StoppingCondition::consensus_within(10_000),
            replicas,
            master_seed: seed,
            threads,
            adversary: Vec::new(),
        }
        .run(&graph)
        .unwrap();

        let v2 = Experiment::on(graph_spec.clone())
            .named("pin/materialised")
            .initial(InitialCondition::BernoulliWithBias { delta })
            .stopping(StoppingCondition::consensus_within(10_000))
            .replicas(replicas)
            .seed(seed)
            .threads(threads)
            .run()
            .unwrap();

        assert_eq!(
            v2.report, legacy_report,
            "materialised Experiment v2 diverged from the pre-redesign path at {threads} threads"
        );
    }
}

/// Implicit runs are bit-identical across thread counts (the topology
/// engine's chunk-seeded determinism, surfaced through the new API).
#[test]
fn implicit_reports_are_thread_count_invariant() {
    let run_with = |threads: usize| {
        paper_experiment(TopologySpec::ImplicitSbm {
            n: 9_000, // spans multiple 4096-vertex kernel chunks
            blocks: 3,
            p_in: 0.4,
            p_out: 0.2,
        })
        .threads(threads)
        .run()
        .unwrap()
    };
    let one = run_with(1);
    assert_eq!(one, run_with(2));
    assert_eq!(one, run_with(8));
}

/// The registry's short names compose with the builder end to end.
#[test]
fn registry_short_names_drive_experiments() {
    for name in TOPOLOGY_NAMES {
        let spec = resolve_topology(name, 600).unwrap_or_else(|| panic!("{name}"));
        let result = Experiment::on(spec)
            .named(format!("registry/{name}"))
            .initial(InitialCondition::BernoulliWithBias { delta: 0.2 })
            .stopping(StoppingCondition::fixed_rounds(2))
            .replicas(1)
            .seed(1)
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(result.n, 600, "{name}");
    }
}

/// A full experiment config survives JSON and back, and the deserialised
/// copy reproduces the original's seeded report exactly.
#[test]
fn serialised_configs_reproduce_identical_reports() {
    let original = paper_experiment(TopologySpec::Complete { n: 800 }).named("json/pin");
    let text = original.to_json_string();
    let reloaded = Experiment::from_json_str(&text).unwrap();
    assert_eq!(reloaded, original);
    assert_eq!(
        reloaded.run().unwrap().report,
        original.run().unwrap().report
    );
}
