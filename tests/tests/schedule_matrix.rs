//! Schedule × topology regression matrix.
//!
//! PR 4's `Experiment::run` silently forked per spec kind and rejected
//! `schedule(AsynchronousRandomOrder)` on implicit specs with a typed
//! error.  The unified engine deleted that fork: every [`TopologySpec`]
//! variant must now run under **both** schedules, reproducibly — which is
//! exactly what this suite pins, together with the seeded-async determinism
//! semantics (bit-identical across repetitions and thread counts for a
//! fixed seed).

use bo3_core::prelude::*;

/// One small instance of every `TopologySpec` variant.
fn all_variants() -> Vec<TopologySpec> {
    vec![
        TopologySpec::Complete { n: 400 },
        TopologySpec::CompleteBipartite { a: 180, b: 220 },
        TopologySpec::CompleteMultipartite {
            blocks: vec![100, 140, 160],
        },
        TopologySpec::ImplicitGnp { n: 400, p: 0.4 },
        TopologySpec::ImplicitSbm {
            n: 400,
            blocks: 2,
            p_in: 0.5,
            p_out: 0.4,
        },
        TopologySpec::Materialised(GraphSpec::DenseForAlpha { n: 400, alpha: 0.8 }),
    ]
}

fn experiment(spec: TopologySpec, schedule: Schedule) -> Experiment {
    Experiment::on(spec)
        .schedule(schedule)
        .initial(InitialCondition::BernoulliWithBias { delta: 0.15 })
        .stopping(StoppingCondition::consensus_within(10_000))
        .replicas(3)
        .seed(0xA51)
        .threads(2)
}

#[test]
fn every_spec_variant_runs_under_both_schedules() {
    for spec in all_variants() {
        for schedule in [Schedule::Synchronous, Schedule::AsynchronousRandomOrder] {
            let label = format!("{} / {}", spec.label(), schedule.label());
            let result = experiment(spec.clone(), schedule)
                .run()
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(result.schedule, schedule, "{label}");
            assert_eq!(result.report.outcomes.len(), 3, "{label}");
            assert!(
                (result.report.consensus_rate - 1.0).abs() < 1e-12,
                "{label} should reach consensus"
            );
            assert!(result.red_swept(), "{label} should sweep red");
        }
    }
}

#[test]
fn asynchronous_runs_are_reproducible_for_every_variant() {
    for spec in all_variants() {
        let label = spec.label();
        let a = experiment(spec.clone(), Schedule::AsynchronousRandomOrder)
            .run()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let b = experiment(spec, Schedule::AsynchronousRandomOrder)
            .run()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(
            a.report, b.report,
            "{label}: seeded async reports must be bit-identical"
        );
    }
}

#[test]
fn asynchronous_implicit_reports_are_thread_count_invariant() {
    // n spans multiple 4096-vertex kernel chunks, so a thread-dependent
    // regression could not hide in a single work unit.
    let run_with = |threads: usize| {
        Experiment::on(TopologySpec::ImplicitGnp { n: 9_000, p: 0.3 })
            .schedule(Schedule::AsynchronousRandomOrder)
            .initial(InitialCondition::BernoulliWithBias { delta: 0.12 })
            .stopping(StoppingCondition::fixed_rounds(4))
            .replicas(2)
            .seed(7)
            .threads(threads)
            .run()
            .unwrap()
    };
    let one = run_with(1);
    assert_eq!(one, run_with(2));
    assert_eq!(one, run_with(8));
}

#[test]
fn the_two_schedules_are_genuinely_different_processes() {
    // Same spec, same seed: the asynchronous ablation must not silently
    // alias the synchronous path (they consume different stream layouts and
    // different state-read semantics).
    let run_with = |schedule: Schedule| {
        Experiment::on(TopologySpec::ImplicitGnp { n: 2_000, p: 0.4 })
            .schedule(schedule)
            .initial(InitialCondition::BernoulliWithBias { delta: 0.05 })
            .stopping(StoppingCondition::fixed_rounds(3))
            .replicas(1)
            .seed(3)
            .run()
            .unwrap()
    };
    let sync = run_with(Schedule::Synchronous);
    let async_ = run_with(Schedule::AsynchronousRandomOrder);
    assert!(
        (sync.report.outcomes[0].final_blue_fraction
            - async_.report.outcomes[0].final_blue_fraction)
            .abs()
            > 1e-9,
        "sync and async trajectories should differ"
    );
}

#[test]
fn degree_ranked_initials_run_on_implicit_sbm_through_the_oracle() {
    // Pre-oracle this combination was a typed error (`sample_n` cannot rank
    // degrees); now the adversarial placement runs adjacency-free under
    // both schedules.
    for schedule in [Schedule::Synchronous, Schedule::AsynchronousRandomOrder] {
        let result = Experiment::on(TopologySpec::ImplicitSbm {
            n: 3_000,
            blocks: 2,
            p_in: 0.5,
            p_out: 0.4,
        })
        .schedule(schedule)
        .initial(InitialCondition::HighestDegreeBlue { blue: 900 })
        .stopping(StoppingCondition::consensus_within(10_000))
        .replicas(2)
        .seed(11)
        .run()
        .unwrap();
        assert!(
            (result.report.consensus_rate - 1.0).abs() < 1e-12,
            "{}",
            schedule.label()
        );
        for outcome in &result.report.outcomes {
            assert!((outcome.initial_blue_fraction - 0.3).abs() < 1e-12);
        }
    }
}

/// One small instance of every `AdversarySpec` variant.
fn all_adversaries() -> Vec<AdversarySpec> {
    vec![
        AdversarySpec::Zealots { fraction: 0.05 },
        AdversarySpec::ZealotIds {
            vertices: vec![0, 7, 31],
        },
        AdversarySpec::Byzantine { fraction: 0.05 },
        AdversarySpec::Drop { q: 0.1 },
        AdversarySpec::Partition {
            from_round: 0,
            until_round: 4,
            blocks: 2,
        },
    ]
}

#[test]
fn every_adversary_runs_on_every_spec_variant_under_both_schedules() {
    // The full AdversarySpec × TopologySpec × Schedule cube through the
    // Experiment surface — no combination may fork into a rejection or a
    // missing-counters path.
    for adversary in all_adversaries() {
        for spec in all_variants() {
            for schedule in [Schedule::Synchronous, Schedule::AsynchronousRandomOrder] {
                let label = format!(
                    "{} / {} / {}",
                    adversary.label(),
                    spec.label(),
                    schedule.label()
                );
                let result = experiment(spec.clone(), schedule)
                    .stopping(StoppingCondition::fixed_rounds(6))
                    .adversary(adversary.clone())
                    .run()
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                assert_eq!(result.report.outcomes.len(), 3, "{label}");
                let counters = result
                    .adversary_counters()
                    .unwrap_or_else(|| panic!("{label}: no adversary counters"));
                match &adversary {
                    AdversarySpec::Zealots { .. } => assert!(counters.zealots > 0, "{label}"),
                    AdversarySpec::ZealotIds { vertices } => {
                        assert_eq!(counters.zealots, vertices.len(), "{label}")
                    }
                    AdversarySpec::Byzantine { .. } => assert!(counters.byzantine > 0, "{label}"),
                    AdversarySpec::Drop { .. } => {
                        assert!(counters.dropped_samples > 0, "{label}")
                    }
                    AdversarySpec::Partition { .. } => {
                        assert!(counters.partition_rounds > 0, "{label}")
                    }
                }
            }
        }
    }
}

#[test]
fn adversarial_experiments_are_reproducible_and_thread_invariant() {
    // A composed adversary over the matrix's schedules: bit-identical across
    // repetitions and thread counts, like the honest runs above.
    for schedule in [Schedule::Synchronous, Schedule::AsynchronousRandomOrder] {
        let run_with = |threads: usize| {
            Experiment::on(TopologySpec::ImplicitSbm {
                n: 9_000,
                blocks: 2,
                p_in: 0.5,
                p_out: 0.4,
            })
            .schedule(schedule)
            .initial(InitialCondition::BernoulliWithBias { delta: 0.12 })
            .stopping(StoppingCondition::fixed_rounds(4))
            .adversary(AdversarySpec::Zealots { fraction: 0.02 })
            .adversary(AdversarySpec::Drop { q: 0.1 })
            .adversary(AdversarySpec::Partition {
                from_round: 1,
                until_round: 3,
                blocks: 2,
            })
            .replicas(2)
            .seed(7)
            .threads(threads)
            .run()
            .unwrap()
        };
        let one = run_with(1);
        assert_eq!(one, run_with(2), "{}", schedule.label());
        assert_eq!(one, run_with(8), "{}", schedule.label());
        assert!(one.adversary_counters().unwrap().dropped_samples > 0);
    }
}

#[test]
fn registry_names_compose_with_the_asynchronous_schedule() {
    // The short-name surface reaches the same unified engine.
    for name in TOPOLOGY_NAMES {
        let spec = resolve_topology(name, 600).unwrap_or_else(|| panic!("{name}"));
        let result = Experiment::on(spec)
            .named(format!("schedule-matrix/{name}"))
            .schedule(Schedule::AsynchronousRandomOrder)
            .initial(InitialCondition::BernoulliWithBias { delta: 0.2 })
            .stopping(StoppingCondition::fixed_rounds(2))
            .replicas(1)
            .seed(1)
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(result.n, 600, "{name}");
        assert_eq!(result.schedule, Schedule::AsynchronousRandomOrder);
    }
}
