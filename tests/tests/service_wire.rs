//! Wire-level integration suite for the `bo3-serve` daemon.
//!
//! Pins the service determinism contract from `ISSUE`/`ROADMAP`: a result
//! served over the socket is **bit-identical** (`==` on the config-IO
//! round-trip types) to an in-process [`Experiment::run`] of the same JSON —
//! at 1, 2 and 8 server worker threads, while other jobs run concurrently —
//! plus cancel-mid-run, malformed-request handling, campaign fan-out parity
//! and the graceful drain.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use bo3_core::prelude::*;
use bo3_serve::{Client, Service, ServiceConfig, ServiceHandle};

fn service(workers: usize, rounds_per_slice: usize) -> ServiceHandle {
    Service::start(ServiceConfig {
        workers,
        rounds_per_slice,
        ..ServiceConfig::default()
    })
    .expect("daemon starts on an ephemeral port")
}

/// The experiment every determinism test round-trips: implicit `G(n, p)`,
/// so the adjacency-free sampler path is what travels the socket.
fn gnp_experiment(seed: u64) -> Experiment {
    Experiment::on(TopologySpec::ImplicitGnp { n: 3_000, p: 0.3 })
        .named(format!("wiretest/gnp/{seed}"))
        .initial(InitialCondition::BernoulliWithBias { delta: 0.15 })
        .replicas(3)
        .seed(seed)
}

fn mixed_experiment(i: u64) -> Experiment {
    match i % 3 {
        0 => Experiment::on(TopologySpec::Complete { n: 2_500 })
            .named(format!("wiretest/mix/{i}"))
            .initial(InitialCondition::BernoulliWithBias { delta: 0.2 })
            .replicas(2)
            .seed(100 + i),
        1 => gnp_experiment(100 + i),
        _ => Experiment::on(TopologySpec::CompleteBipartite { a: 1_200, b: 1_300 })
            .named(format!("wiretest/mix/{i}"))
            .initial(InitialCondition::BernoulliWithBias { delta: 0.1 })
            .replicas(2)
            .seed(100 + i),
    }
}

/// A job slow enough (voter model: Θ(n) rounds) that cancel and drain
/// always catch it mid-run.
fn slow_experiment(seed: u64) -> Experiment {
    Experiment::on(TopologySpec::Complete { n: 4_000 })
        .named("wiretest/slow")
        .protocol(ProtocolSpec::Voter)
        .initial(InitialCondition::BernoulliWithBias { delta: 1e-6 })
        .stopping(StoppingCondition::consensus_within(1_000_000))
        .replicas(8)
        .seed(seed)
}

/// Same experiment JSON over the socket at several worker counts, always
/// concurrent with a batch of other jobs: every served report must compare
/// bit-identical to the in-process run, and to each other across daemons.
#[test]
fn served_reports_are_bit_identical_across_worker_counts_under_load() {
    let target = gnp_experiment(7);
    let direct = target.run().expect("in-process run");
    // The JSON that travels the wire is the config-IO layout, so pin the
    // round-trip too: parse back what we serialise and compare.
    let reparsed = Experiment::from_json_str(&target.to_json_string()).expect("round-trip");
    assert_eq!(reparsed, target);

    for workers in [1usize, 2, 8] {
        let handle = service(workers, 16);
        let mut client = Client::connect(handle.local_addr()).expect("connect");
        // Fill the queue with concurrent traffic first…
        let mut noise = Vec::new();
        for i in 0..8u64 {
            noise.push(client.submit(&mixed_experiment(i)).expect("submit noise"));
        }
        // …then the job under test, competing for the same workers.
        let job = client.submit(&target).expect("submit target");
        let served = client.wait_done(job).expect("served result");
        assert_eq!(
            served.report, direct.report,
            "socket result differs from in-process run at {workers} workers"
        );
        assert_eq!(served.n, direct.n);
        assert!(served.cell.is_none());
        // The noise jobs are deterministic too — spot-check them all.
        for (i, noise_job) in noise.into_iter().enumerate() {
            let mut streamer = Client::connect(handle.local_addr()).expect("connect");
            let report = streamer.wait_done(noise_job).expect("noise result");
            let expected = mixed_experiment(i as u64).run().expect("direct noise run");
            assert_eq!(
                report.report, expected.report,
                "noise job {i} diverged at {workers} workers"
            );
        }
        handle.drain_and_join();
    }
}

/// Eight experiments at once on an eight-worker daemon: all served
/// concurrently (the running gauge must reach the worker count) and all
/// bit-identical to their in-process twins.
#[test]
fn eight_concurrent_experiments_all_deterministic() {
    let handle = service(8, 4);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let jobs: Vec<(u64, Experiment)> = (0..8u64)
        .map(|i| {
            let e = mixed_experiment(i);
            (client.submit(&e).expect("submit"), e)
        })
        .collect();
    let mut peak_running = 0i64;
    for _ in 0..50 {
        peak_running = peak_running.max(handle.metrics().jobs_running.get());
        std::thread::sleep(Duration::from_millis(2));
    }
    for (job, experiment) in jobs {
        let served = client.wait_done(job).expect("served");
        let direct = experiment.run().expect("direct");
        assert_eq!(served.report, direct.report, "job {job} diverged");
    }
    assert!(
        peak_running >= 2,
        "expected concurrent execution, saw peak {peak_running}"
    );
    handle.drain_and_join();
}

/// Cancelling mid-run stops the job within a round slice and streams the
/// terminal `cancelled` line to subscribers.
#[test]
fn cancel_mid_run_terminates_within_a_slice() {
    let handle = service(1, 1);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let job = client.submit(&slow_experiment(3)).expect("submit");
    // Let the worker claim it, then cancel from a second connection.
    std::thread::sleep(Duration::from_millis(150));
    let mut canceller = Client::connect(handle.local_addr()).expect("connect");
    canceller.cancel(job).expect("cancel");
    let (_updates, terminal) = client.stream(job).expect("stream");
    assert!(
        matches!(terminal, Response::Cancelled { job: j } if j == job),
        "expected cancelled, got {}",
        terminal.to_json_string()
    );
    // The worker is free again: a quick job still round-trips exactly.
    let quick = gnp_experiment(21);
    let next = client.submit(&quick).expect("submit after cancel");
    let served = client.wait_done(next).expect("post-cancel job");
    assert_eq!(served.report, quick.run().expect("direct").report);
    handle.drain_and_join();
}

/// Malformed and invalid requests get typed errors and never kill the
/// connection or the daemon.
#[test]
fn malformed_requests_get_typed_errors_and_keep_the_connection() {
    let handle = service(1, 16);
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let probes: &[(&str, &str)] = &[
        ("this is not json", "bad-request"),
        ("{}", "bad-request"),
        ("{\"type\":\"launch\"}", "bad-request"),
        ("{\"type\":\"submit\"}", "bad-request"),
        ("{\"type\":\"stream\"}", "bad-request"),
        ("{\"type\":\"cancel\",\"job\":99}", "unknown-job"),
        ("{\"type\":\"stream\",\"job\":99}", "unknown-job"),
    ];
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    for (line, want_code) in probes {
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write");
        stream.flush().expect("flush");
        let mut answer = String::new();
        std::io::BufRead::read_line(&mut reader, &mut answer).expect("read");
        let response = Response::from_json_str(answer.trim()).expect("typed response");
        match response {
            Response::Error(e) => assert_eq!(
                e.code.as_str(),
                *want_code,
                "probe {line:?} answered {answer:?}"
            ),
            other => panic!("probe {line:?} got non-error {}", other.to_json_string()),
        }
    }
    // An invalid (but well-formed) config is its own error code.
    let bad = gnp_experiment(1).replicas(0);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let err = client.submit(&bad).expect_err("refused");
    assert!(matches!(err, CoreError::InvalidConfig { .. }));
    // Daemon is still healthy.
    client.ping().expect("ping after abuse");
    handle.drain_and_join();
}

/// `submit-campaign` fans every cell out as a job whose report (and
/// attached `CellResult`) matches driving the same cells directly.
#[test]
fn campaign_cells_served_match_direct_cell_runs() {
    let campaign = Campaign::new("wiretest/campaign", 41)
        .add_cell(
            Experiment::on(TopologySpec::Complete { n: 2_000 })
                .named("cell/a")
                .initial(InitialCondition::BernoulliWithBias { delta: 0.2 })
                .replicas(2),
        )
        .add_cell(
            Experiment::on(TopologySpec::ImplicitGnp { n: 2_500, p: 0.4 })
                .named("cell/b")
                .initial(InitialCondition::BernoulliWithBias { delta: 0.1 })
                .replicas(2),
        );
    let handle = service(2, 16);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let (name, jobs) = client.submit_campaign(&campaign).expect("submit campaign");
    assert_eq!(name, "wiretest/campaign");
    assert_eq!(jobs.len(), campaign.cells.len());
    for (index, job) in jobs.into_iter().enumerate() {
        let served = client.wait_done(job).expect("cell served");
        let direct = campaign.cells[index].run().expect("cell direct");
        assert_eq!(served.report, direct.report, "cell {index} diverged");
        let cell = served
            .cell
            .as_ref()
            .expect("campaign jobs carry CellResult");
        assert_eq!(cell.index, index);
        assert_eq!(
            *cell,
            CellResult::of(index, &campaign.cells[index].name, &direct.report)
        );
    }
    handle.drain_and_join();
}

/// SIGTERM semantics through the in-process API: drain stops acceptance,
/// cancels queued and running jobs within a slice, streams terminal lines,
/// and the event log records the deadline.
#[test]
fn drain_is_graceful_and_logged() {
    let handle = service(1, 1);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let running = client.submit(&slow_experiment(9)).expect("submit running");
    let queued = client.submit(&slow_experiment(10)).expect("submit queued");
    std::thread::sleep(Duration::from_millis(150));
    handle.trigger_drain();
    // Draining daemons refuse new work with the typed shutting-down error.
    let refused = client.submit(&gnp_experiment(2));
    match refused {
        Err(CoreError::Report { reason }) => {
            assert!(reason.contains("shutting-down"), "wrong refusal: {reason}")
        }
        other => panic!("submit during drain: {other:?}"),
    }
    // Both jobs come back cancelled over the wire.
    for job in [running, queued] {
        let (_u, terminal) = client.stream(job).expect("stream drained job");
        assert!(
            matches!(terminal, Response::Cancelled { job: j } if j == job),
            "job {job}: {}",
            terminal.to_json_string()
        );
    }
    let events = handle.drain_and_join();
    assert!(events.contains("\"event\":\"drain_begin\""));
    assert!(events.contains("deadline_ns"));
    assert!(events.contains("\"event\":\"drain_complete\""));
    assert!(events.contains("\"within_grace\":true"));
}

/// The HTTP surface: Prometheus text on `/metrics` with the service
/// instruments present, JSON elsewhere.
#[test]
fn metrics_endpoint_serves_all_service_instruments() {
    let handle = service(2, 16);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let quick = gnp_experiment(5);
    let job = client.submit(&quick).expect("submit");
    client.wait_done(job).expect("done");
    let prom = bo3_serve::http_get(handle.local_addr(), "/metrics").expect("GET /metrics");
    for instrument in [
        "service_jobs_accepted_total",
        "service_jobs_done_total",
        "service_jobs_failed_total",
        "service_jobs_cancelled_total",
        "service_jobs_running",
        "service_queue_depth",
        "service_job_wall_ns",
        "service_round_ns",
    ] {
        assert!(
            prom.contains(&format!("# TYPE {instrument}")),
            "missing {instrument} in:\n{prom}"
        );
    }
    assert!(prom.contains("service_jobs_done_total 1"));
    // The NDJSON metrics request serves the same registry as JSON.
    let snapshot = client.metrics().expect("metrics request");
    let rendered = snapshot.to_json_string();
    assert!(rendered.contains("service_jobs_done_total"));
    // An HTTP read of a bogus path is a 404, not a hang or a crash.
    let mut raw = TcpStream::connect(handle.local_addr()).expect("connect");
    raw.write_all(b"GET /bogus HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("write");
    let mut body = String::new();
    raw.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    raw.read_to_string(&mut body).expect("read");
    assert!(body.starts_with("HTTP/1.1 404"));
    handle.drain_and_join();
}
