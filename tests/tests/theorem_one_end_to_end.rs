//! End-to-end checks of the headline claim (Theorem 1) across crates:
//! graph generation → dynamics → consensus, compared against the theory
//! crate's regime classification.

use bo3_core::prelude::*;
use bo3_integration::{dense_scenario, mean_consensus_time, sparse_scenario, traced_run};

#[test]
fn dense_graph_reaches_red_consensus_in_a_handful_of_rounds() {
    let (graph, delta) = dense_scenario(3_000, 1);
    let run = traced_run(&graph, delta, 7);
    assert!(run.red_won(), "red should win: {:?}", run.stop_reason);
    assert!(run.rounds <= 15, "took {} rounds", run.rounds);
    // The theory side classifies this point as inside the theorem regime.
    let stats = DegreeStats::of(&graph).unwrap();
    let pred = predict(
        graph.num_vertices() as f64,
        stats.alpha().unwrap(),
        delta,
        2.0,
    );
    assert!(pred.in_theorem_regime);
}

#[test]
fn consensus_time_is_flat_while_n_grows() {
    let mut means = Vec::new();
    for (i, n) in [800usize, 3_200, 12_800].into_iter().enumerate() {
        let (graph, delta) = dense_scenario(n, 10 + i as u64);
        let mean = mean_consensus_time(&graph, ProtocolSpec::BestOfThree, delta, 4, 99)
            .expect("consensus");
        means.push(mean);
    }
    let spread = means.iter().cloned().fold(f64::MIN, f64::max)
        - means.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread <= 4.0, "means {means:?}");
}

#[test]
fn every_replica_of_a_monte_carlo_batch_ends_red() {
    let (graph, delta) = dense_scenario(2_000, 3);
    // The spec only names the topology for the report; run_on supplies the
    // already generated graph.
    let exp = Experiment::on(GraphSpec::Complete { n: 1 })
        .named("it/theorem-one")
        .protocol(ProtocolSpec::BestOfThree)
        .initial(InitialCondition::BernoulliWithBias { delta })
        .stopping(StoppingCondition::consensus_within(10_000))
        .replicas(12)
        .seed(5);
    let result = exp.run_on(&graph).unwrap();
    assert!(result.red_swept());
    assert!((result.report.consensus_rate - 1.0).abs() < 1e-12);
}

#[test]
fn sparse_torus_is_far_slower_than_a_dense_graph_of_the_same_size() {
    // 32x32 torus (n = 1024, degree 4) vs a dense graph on 1024 vertices.
    let torus = sparse_scenario(32);
    let (dense, _) = dense_scenario(1_024, 4);
    let delta = 0.15;
    let torus_time =
        mean_consensus_time(&torus, ProtocolSpec::BestOfThree, delta, 3, 1).expect("torus");
    let dense_time =
        mean_consensus_time(&dense, ProtocolSpec::BestOfThree, delta, 3, 1).expect("dense");
    assert!(
        torus_time > 2.0 * dense_time,
        "torus {torus_time} vs dense {dense_time}"
    );
}

#[test]
fn blue_initial_majority_flips_the_outcome() {
    // The protocol amplifies whatever the initial majority is; with the roles
    // swapped (blue majority), blue must win.
    let (graph, _) = dense_scenario(1_500, 6);
    let sim = Simulator::new(&graph).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    use rand::SeedableRng;
    let init = InitialCondition::Bernoulli {
        blue_probability: 0.62,
    }
    .sample(&graph, &mut rng)
    .unwrap();
    let run = sim.run(&BestOfThree::new(), init, &mut rng).unwrap();
    assert_eq!(run.winner, Some(Opinion::Blue));
}
