//! Cross-crate checks that the theory crate's recursions and phase plans
//! describe what the simulator actually does.

use bo3_core::prelude::*;
use bo3_integration::traced_run;
use bo3_theory::phases::{phase_one_bias_target, phase_plan};
use bo3_theory::recursion::{ideal_steps_to_reach, ideal_trajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn equation_one_tracks_the_complete_graph_trajectory() {
    let n = 10_000usize;
    let delta = 0.1;
    let graph = GraphSpec::Complete { n }
        .generate(&mut StdRng::seed_from_u64(0))
        .unwrap();
    let run = traced_run(&graph, delta, 1);
    let measured = run.trace.as_ref().unwrap().blue_fractions();
    let ideal = ideal_trajectory(0.5 - delta, measured.len().saturating_sub(1));
    for (t, (&m, &p)) in measured.iter().zip(ideal.iter()).enumerate() {
        if p < 0.02 {
            break; // finite-size noise dominates once the fraction is tiny
        }
        assert!(
            (m - p).abs() < 0.025,
            "round {t}: measured {m}, recursion {p}"
        );
    }
}

#[test]
fn ideal_recursion_steps_lower_bound_the_measured_consensus_time() {
    // The recursion ignores finite-size effects and collisions, so the number
    // of steps it needs to push the blue probability below 1/n is a lower
    // bound (up to ±1 round of noise) on the simulated consensus time.
    let n = 5_000usize;
    let delta = 0.08;
    let graph = GraphSpec::Complete { n }
        .generate(&mut StdRng::seed_from_u64(2))
        .unwrap();
    let run = traced_run(&graph, delta, 3);
    assert!(run.red_won());
    let ideal = ideal_steps_to_reach(0.5 - delta, 1.0 / n as f64, 10_000).unwrap();
    assert!(
        run.rounds + 1 >= ideal,
        "measured {} rounds vs ideal lower bound {}",
        run.rounds,
        ideal
    );
}

#[test]
fn measured_phase_lengths_fit_inside_the_paper_plan() {
    let n = 6_000usize;
    let delta = 0.03;
    let graph = GraphSpec::Complete { n }
        .generate(&mut StdRng::seed_from_u64(4))
        .unwrap();
    let run = traced_run(&graph, delta, 5);
    let observed = segment_trace(run.trace.as_ref().unwrap(), n);
    let plan = phase_plan((n - 1) as f64, delta, 2.0).unwrap();
    assert!(observed.bias_amplification_rounds <= plan.t3_bias_amplification + 2);
    assert!(observed.total_rounds <= plan.total_levels() + 4);
    assert!(observed.measured_bias_growth_rate.unwrap() >= 1.25);
}

#[test]
fn bias_target_is_where_decay_takes_over() {
    // Once the measured bias passes 1/(2√3) the blue fraction should collapse
    // within a few rounds on a dense graph.
    let n = 8_000usize;
    let graph = GraphSpec::Complete { n }
        .generate(&mut StdRng::seed_from_u64(6))
        .unwrap();
    let run = traced_run(&graph, 0.05, 7);
    let trace = run.trace.as_ref().unwrap();
    let biases = trace.red_biases();
    let fractions = trace.blue_fractions();
    if let Some(handover) = biases.iter().position(|&d| d >= phase_one_bias_target()) {
        let remaining = fractions.len() - handover;
        assert!(
            remaining <= 8,
            "decay took {remaining} rounds after hand-over"
        );
    } else {
        panic!("the trajectory never reached the hand-over bias");
    }
}

#[test]
fn prediction_regime_classification_matches_graph_reality() {
    let mut rng = StdRng::seed_from_u64(8);
    // Dense instance: inside the regime.
    let dense = GraphSpec::DenseForAlpha {
        n: 4_000,
        alpha: 0.8,
    }
    .generate(&mut rng)
    .unwrap();
    let stats = DegreeStats::of(&dense).unwrap();
    let p = predict(4_000.0, stats.alpha().unwrap(), 0.05, 2.0);
    assert!(p.in_theorem_regime);
    // Constant-degree instance: outside.
    let torus = GraphSpec::Torus2d { rows: 60, cols: 60 }
        .generate(&mut rng)
        .unwrap();
    let stats = DegreeStats::of(&torus).unwrap();
    let p = predict(3_600.0, stats.alpha().unwrap(), 0.05, 2.0);
    assert!(!p.in_theorem_regime);
}
