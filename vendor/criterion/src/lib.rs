//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace's bench
//! targets link against this shim instead. It mirrors the criterion 0.5
//! call surface the benches use (`criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `black_box`) and
//! reports simple wall-clock statistics (min / mean / max per iteration).
//! It performs no warm-up modelling, outlier rejection or HTML reporting;
//! swap in the real criterion for publication-grade numbers.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark wall-clock budget. Sampling stops at `sample_size`
/// iterations or when the budget is exhausted, whichever comes first.
const DEFAULT_MEASUREMENT_TIME: Duration = Duration::from_secs(3);

/// The benchmark manager: configuration plus result reporting.
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: DEFAULT_MEASUREMENT_TIME,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration. The shim accepts and ignores the
    /// flags cargo and criterion-aware tooling pass (`--bench`, filters);
    /// present for call-site compatibility with the real crate.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        };
        println!("group: {}", group.name);
        group
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.label(), self.sample_size, self.measurement_time, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the wall-clock budget per benchmark in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Declares the amount of work per iteration. The shim records nothing
    /// but keeps call sites source-compatible with the real criterion.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, self.sample_size, self.measurement_time, f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished by parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Units of work per iteration, for throughput-style reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, once per sample, until the sample target or the time
    /// budget is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let budget_start = Instant::now();
        // One untimed warm-up iteration.
        black_box(f());
        while self.samples.len() < self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnOnce(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        measurement_time,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let n = bencher.samples.len() as u32;
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / n;
    let min = bencher.samples.iter().min().expect("nonempty");
    let max = bencher.samples.iter().max().expect("nonempty");
    println!("  {label}: [{min:?} {mean:?} {max:?}] ({n} samples)");
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench-target entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(50));
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_run_parameterised_benches() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut observed = Vec::new();
        for &n in &[2u64, 4] {
            group.bench_with_input(BenchmarkId::new("double", n), &n, |b, &n| {
                b.iter(|| observed.push(n * 2));
            });
        }
        group.finish();
        assert!(observed.contains(&4) && observed.contains(&8));
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).label(), "9");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }
}
