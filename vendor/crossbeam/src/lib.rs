//! Vendored stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used by this workspace, and since
//! Rust 1.63 the standard library provides scoped threads natively, so the
//! shim is a thin adapter over [`std::thread::scope`] that mirrors the
//! crossbeam calling convention (`scope(|s| ...)` returning a `Result`,
//! spawn closures receiving the scope as an argument).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod thread {
    //! Scoped threads with the crossbeam 0.8 API shape.

    /// Result of a scope: `Err` carries a child-thread panic payload.
    ///
    /// The std backend propagates child panics by unwinding in the parent,
    /// so in practice this shim always returns `Ok`; the type exists so
    /// call sites written against crossbeam compile unchanged.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle; spawn closures receive `&Scope` like in crossbeam.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, allowing
        /// nested spawns, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope in which threads borrowing from the environment can
    /// be spawned; all spawned threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_join_and_share_borrows() {
            let data = vec![1u64, 2, 3, 4];
            let total = std::sync::atomic::AtomicU64::new(0);
            super::scope(|s| {
                for x in &data {
                    s.spawn(|_| total.fetch_add(*x, std::sync::atomic::Ordering::Relaxed));
                }
            })
            .unwrap();
            assert_eq!(total.into_inner(), 10);
        }
    }
}
