//! Vendored stand-in for the `parking_lot` crate.
//!
//! Wraps [`std::sync::Mutex`]/[`std::sync::RwLock`] behind parking_lot's
//! non-poisoning API (`lock()` returns the guard directly). Lock poisoning
//! is swallowed deliberately: parking_lot has no poisoning, and the
//! workspace's workers treat a panicked peer as fatal at the scope join.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::sync::PoisonError;

/// A mutex with parking_lot's panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// The guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// The guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// The guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips_values() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5usize);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(l.into_inner(), 7);
    }
}
