//! `any::<T>()` — strategies derived from a type's full value range.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! arbitrary_int_impl {
    ($($t:ty),* $(,)?) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen()
                }
            }
        )*
    };
}

arbitrary_int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = rng_for_test("any_generates_varied_values");
        let values: Vec<u64> = (0..16).map(|_| any::<u64>().generate(&mut rng)).collect();
        let mut unique = values.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(unique.len() > 10);
    }
}
