//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A strategy over vectors whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        !size.is_empty(),
        "proptest::collection::vec: empty size range"
    );
    VecStrategy { element, size }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn vec_respects_size_and_element_strategy() {
        let mut rng = rng_for_test("vec_respects_size_and_element_strategy");
        let s = vec(0usize..4, 2..9);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }
}
