//! Vendored stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use — the [`Strategy`] trait (with `prop_map`), range/tuple/`any`
//! strategies, [`collection::vec`], `prop_oneof!`, `ProptestConfig` and the
//! `proptest!`/`prop_assert!` macros — over a deterministic RNG seeded per
//! test from the test's name, so failures reproduce exactly across runs.
//!
//! Unlike the real proptest there is **no shrinking** and no failure
//! persistence: a failing case reports the panic from the offending
//! iteration directly. Swap in the real crate for minimised counterexamples.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{BoxedStrategy, Strategy};
pub use test_runner::ProptestConfig;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// block is run for `ProptestConfig::cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(#[test] fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
                for case in 0..config.cases {
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest: {} failed at case {}/{} (deterministic seed; rerun reproduces it)",
                            stringify!($name),
                            case + 1,
                            config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Builds a strategy that picks uniformly among the listed strategies,
/// which must share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(x in 1usize..50, y in (0u32..10).prop_map(|v| v * 3)) {
            prop_assert!((1..50).contains(&x));
            prop_assert!(y % 3 == 0 && y < 30);
        }

        #[test]
        fn tuples_and_collections(v in crate::collection::vec((0usize..5, any::<bool>()), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (n, _flag) in v {
                prop_assert!(n < 5);
            }
        }

        #[test]
        fn oneof_covers_all_arms(choice in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&choice));
        }
    }

    // The no-config form of the macro must expand too.
    proptest! {
        #[test]
        fn no_config_form_compiles(b in any::<bool>()) {
            prop_assert!(u8::from(b) <= 1);
        }
    }
}
