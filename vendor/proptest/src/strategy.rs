//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of an associated type.
///
/// Unlike the real proptest there is no value tree / shrinking: a strategy
/// simply generates one value per test case from the deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so differently shaped strategies with the
    /// same value type can share a collection (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among strategies sharing a value type (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! range_strategy_impl {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

range_strategy_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy_impl {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy_impl!(A);
tuple_strategy_impl!(A, B);
tuple_strategy_impl!(A, B, C);
tuple_strategy_impl!(A, B, C, D);
tuple_strategy_impl!(A, B, C, D, E);
tuple_strategy_impl!(A, B, C, D, E, F);
tuple_strategy_impl!(A, B, C, D, E, F, G);
tuple_strategy_impl!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = rng_for_test("ranges_generate_in_bounds");
        for _ in 0..200 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let f = (0.0f64..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = rng_for_test("union_uses_every_arm");
        let u = Union::new(vec![Just(0usize).boxed(), Just(1usize).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[u.generate(&mut rng)] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = rng_for_test("map_and_tuples_compose");
        let s = (1u32..4, 0u32..2).prop_map(|(a, b)| a * 10 + b);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((10..=31).contains(&v));
        }
    }
}
