//! Test execution configuration and deterministic RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG property tests draw from.
pub type TestRng = StdRng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; the shim keeps the suite quick.
        ProptestConfig { cases: 64 }
    }
}

/// Derives a deterministic RNG from a test's name (FNV-1a over the bytes),
/// so each property test explores its own reproducible input sequence.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rngs_are_name_determined() {
        let mut a = rng_for_test("alpha");
        let mut b = rng_for_test("alpha");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = rng_for_test("beta");
        let mut d = rng_for_test("alpha");
        d.next_u64();
        assert_ne!(c.next_u64(), d.next_u64());
    }
}
