//! A portable ChaCha implementation backing [`crate::rngs::StdRng`] and the
//! vendored `rand_chacha` crate.
//!
//! The const parameter `DR` is the number of *double rounds*: ChaCha8 uses
//! 4, ChaCha12 uses 6 and ChaCha20 uses 10.

use crate::{fill_bytes_via_next_u64, RngCore, SeedableRng};

/// A ChaCha block cipher in counter mode, exposed as an RNG.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const DR: usize> {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Index of the next unconsumed word in `buffer`; 16 means "refill".
    index: usize,
}

/// ChaCha with 8 rounds.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds (the cipher behind [`crate::rngs::StdRng`]).
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<10>;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const DR: usize> ChaChaRng<DR> {
    /// "expand 32-byte k", the standard ChaCha constant.
    const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14/15 are the (always-zero) stream id.
        let input = state;
        for _ in 0..DR {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buffer.iter_mut().zip(state.iter().zip(input.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl<const DR: usize> RngCore for ChaChaRng<DR> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_next_u64(self, dest)
    }
}

impl<const DR: usize> SeedableRng for ChaChaRng<DR> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaChaRng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 test vector, section 2.3.2 (ChaCha20 block function), with
    /// nonce fixed to zero as in our counter-mode layout, checked against
    /// the first words produced from an all-zero key.
    #[test]
    fn chacha20_zero_key_matches_known_stream() {
        // Known first block of ChaCha20 with zero key, zero nonce, counter 0
        // (the "keystream for the all-zero case" widely published vector).
        let expected_head: [u32; 4] = [0xADE0_B876, 0x903D_F1A0, 0xE56A_5D40, 0x28BD_8653];
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        for &want in &expected_head {
            assert_eq!(rng.next_u32(), want);
        }
    }

    #[test]
    fn blocks_advance_the_counter() {
        let mut rng = ChaCha8Rng::from_seed([7u8; 32]);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn rounds_differentiate_variants() {
        let seed = [9u8; 32];
        let mut a = ChaCha8Rng::from_seed(seed);
        let mut b = ChaCha12Rng::from_seed(seed);
        assert_ne!(a.next_u32(), b.next_u32());
    }
}
