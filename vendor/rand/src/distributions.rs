//! Distributions: the `Standard` uniform distribution and uniform ranges.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard uniform distribution (`rng.gen::<T>()`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        (rng.next_u32() >> 31) == 1
    }
}

macro_rules! standard_int_impl {
    ($($t:ty => $via:ident),* $(,)?) => {
        $(impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        })*
    };
}

standard_int_impl! {
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64,
}

/// Uniform sampling over ranges (`rng.gen_range(..)`).
pub mod uniform {
    use super::*;
    use std::ops::{Range, RangeInclusive};

    /// A range type `gen_range` accepts for producing values of type `T`.
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        ///
        /// Panics if the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Maps 64 random bits onto `[0, span)` via fixed-point multiply
    /// (Lemire's method without the rejection step: the residual bias of
    /// ~span/2^64 is accepted — far below what any simulation here can
    /// resolve — in exchange for a division-free, branch-free hot path).
    #[inline]
    fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! uniform_int_impl {
        ($($t:ty),* $(,)?) => {
            $(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        self.start.wrapping_add(bounded_u64(rng, span) as $t)
                    }
                }

                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "gen_range: empty range");
                        let span = (end as i128 - start as i128) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        start.wrapping_add(bounded_u64(rng, span + 1) as $t)
                    }
                }
            )*
        };
    }

    uniform_int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! uniform_float_impl {
        ($($t:ty),* $(,)?) => {
            $(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let unit: $t = Standard.sample(rng);
                        let value = self.start + unit * (self.end - self.start);
                        // `start + unit * span` can round up to `end` for very
                        // narrow ranges; clamp to keep the bound exclusive.
                        if value < self.end {
                            value
                        } else {
                            self.end.next_down().max(self.start)
                        }
                    }
                }

                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "gen_range: empty range");
                        let unit: $t = Standard.sample(rng);
                        start + unit * (end - start)
                    }
                }
            )*
        };
    }

    uniform_float_impl!(f32, f64);
}
