//! Vendored stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no route to crates.io, so
//! the workspace vendors the narrow slice of the rand 0.8 API its crates
//! actually use: [`RngCore`], the [`Rng`] extension trait (`gen`,
//! `gen_range`, `gen_bool`), [`SeedableRng`], the [`rngs::StdRng`]
//! generator (ChaCha12-based, like upstream) and
//! [`seq::SliceRandom`] (`shuffle`/`choose`).
//!
//! The generators are deterministic and portable: seeding follows the
//! rand_core convention (`seed_from_u64` expands the seed through
//! SplitMix64) and the block cipher behind [`rngs::StdRng`] is a faithful
//! ChaCha implementation, so simulation results are reproducible across
//! platforms. The stream is **not** guaranteed to be bit-identical to the
//! upstream crates, only to itself.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod chacha;
pub mod distributions;
pub mod rngs;
pub mod seq;

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value whose type has a standard uniform distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type, a fixed-size byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed, expanding it through
    /// SplitMix64 (the rand_core convention).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used only for seed expansion.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Fills a byte slice from a `next_u64` implementation (shared helper for
/// the concrete generators).
pub(crate) fn fill_bytes_via_next_u64<R: RngCore + ?Sized>(rng: &mut R, dest: &mut [u8]) {
    for chunk in dest.chunks_mut(8) {
        let bytes = rng.next_u64().to_le_bytes();
        let len = chunk.len();
        chunk.copy_from_slice(&bytes[..len]);
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
            let z = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&z));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn works_through_dyn_and_mut_references() {
        let mut rng = StdRng::seed_from_u64(4);
        let dynr: &mut dyn RngCore = &mut rng;
        let x = dynr.gen_range(0usize..10);
        assert!(x < 10);
        let mut shuffled: Vec<usize> = (0..50).collect();
        use crate::seq::SliceRandom;
        shuffled.shuffle(&mut &mut rng);
        assert_eq!(shuffled.len(), 50);
    }
}
