//! Sequence helpers: shuffling and random element choice.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn choose_returns_members() {
        let mut rng = StdRng::seed_from_u64(12);
        let v = [5, 6, 7];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
