//! Vendored stand-in for the `rand_chacha` crate.
//!
//! The ChaCha implementation itself lives in the vendored [`rand`] crate
//! (it also backs `rand::rngs::StdRng`); this crate mirrors the upstream
//! layout in which the generators are importable as `rand_chacha::*`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use rand::chacha::{ChaCha12Rng, ChaCha20Rng, ChaCha8Rng, ChaChaRng};

#[cfg(test)]
mod tests {
    use super::ChaCha8Rng;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn chacha8_streams_are_seed_determined() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
