//! Vendored stand-in for the `serde` crate.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derive macros from the vendored `serde_derive`, so the workspace's
//! `#[derive(Serialize, Deserialize)]` annotations compile without network
//! access to the real serde stack. No serialisation is performed anywhere
//! in the tree yet; when a future change needs real (de)serialisation,
//! replace the two vendored crates with the crates.io versions — call sites
//! need no edits.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
