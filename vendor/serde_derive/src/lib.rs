//! Vendored stand-in for `serde_derive`.
//!
//! The workspace's types declare `#[derive(Serialize, Deserialize)]` so they
//! are serialisation-ready, but nothing in the tree performs serialisation
//! yet and the build environment cannot reach crates.io for the real serde
//! stack. These derives therefore expand to nothing; swapping the vendored
//! `serde`/`serde_derive` for the real crates requires no source changes.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
